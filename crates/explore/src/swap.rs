//! Re-ordering of events in histories: `ComputeReorderings` and `Swap`
//! (§5.2).
//!
//! After the current history is extended with a commit event, the
//! exploration may branch on *re-ordered* histories in which an earlier
//! read now reads from the freshly committed transaction. `Swap` removes
//! every event that is ordered after the read and does not belong to the
//! causal past of the committed transaction, producing a feasible history
//! with exactly one pending transaction (the one holding the re-ordered
//! read).

use std::collections::BTreeSet;

use txdpor_analysis::ProgramFootprints;
use txdpor_history::{EventId, EventKind, History, TxId, TxSet};

use crate::ordered::OrderedHistory;

/// A candidate re-ordering: an external read `r` and the last committed
/// transaction `t` it should be made to read from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Reordering {
    /// The read event whose `wr` dependency will be redirected.
    pub read: EventId,
    /// The transaction it will read from after the swap.
    pub target: TxId,
}

/// `ComputeReorderings(h_<)` (§5.2): returns a non-empty set only when the
/// last event of the history order is a commit. Each returned pair consists
/// of an external read `r` of some earlier transaction and the
/// just-committed transaction `t`, such that `t` writes `var(r)` and the
/// transaction of `r` is not causally before `t`.
pub fn compute_reorderings(h: &OrderedHistory) -> Vec<Reordering> {
    compute_reorderings_and_ancestors(h, None, &mut 0)
        .map(|(_, out)| out)
        .unwrap_or_default()
}

/// Like [`compute_reorderings`], also handing back the causal ancestors of
/// the just-committed target so the explorer can reuse the BFS across the
/// in-place `Optimality` trials and the materialised swaps (`None` when the
/// last event is not a commit).
///
/// When static `footprints` are supplied, candidate transactions whose
/// type is statically independent of the target's type are skipped before
/// their external reads are scanned, bumping `pruned` once per skip. The
/// returned set of reorderings is *identical* either way: static
/// independence means the target's write set cannot overlap the
/// candidate's read set, so the per-read `writes_var` filter below would
/// have rejected every read of the skipped transaction anyway.
pub(crate) fn compute_reorderings_and_ancestors(
    h: &OrderedHistory,
    footprints: Option<&ProgramFootprints>,
    pruned: &mut u64,
) -> Option<(TxSet, Vec<Reordering>)> {
    let last = h.last()?;
    let last_event = h.history.event(last)?;
    if !last_event.kind.is_commit() {
        return None;
    }
    let target = h
        .history
        .tx_of_event(last)
        .expect("last event belongs to a transaction");
    // One backward BFS answers every `(tr(r), target) ∈ (so ∪ wr)*` query
    // below in O(1).
    let ancestors = h.history.causal_ancestors(target);
    let target_log = (!target.is_init()).then(|| h.history.tx(target));
    let mut out = Vec::new();
    for log in h.history.transactions() {
        if log.id == target {
            continue;
        }
        if let (Some(fps), Some(target_log)) = (footprints, target_log) {
            if fps.independent_logs(target_log, log) {
                debug_assert!(
                    log.external_reads().iter().all(|r| {
                        let x = r.var().expect("read has a variable");
                        !h.history.writes_var(target, x)
                    }),
                    "statically independent candidate has a read the target writes"
                );
                *pruned += 1;
                continue;
            }
        }
        for read in log.external_reads() {
            let x = read.var().expect("read has a variable");
            if !h.history.writes_var(target, x) || target.is_init() {
                continue;
            }
            if ancestors.contains(log.id) {
                continue;
            }
            if !h.tx_before_event(log.id, last) {
                // tr(r) must precede t in the history order.
                continue;
            }
            out.push(Reordering {
                read: read.id,
                target,
            });
        }
    }
    Some((ancestors, out))
}

/// The set `D` of events deleted by `Swap(h, r, t)`: events strictly after
/// `r` in the history order whose transaction is not in the causal past of
/// `t` (including `t` itself).
pub fn doomed_events(h: &OrderedHistory, read: EventId, target: TxId) -> BTreeSet<EventId> {
    doomed_events_with(h, read, target, &h.history.causal_ancestors(target))
}

/// Like [`doomed_events`], with the causal ancestors of `target`
/// precomputed by the caller (the explorer computes them once per commit
/// and reuses them across every candidate re-ordering).
pub fn doomed_events_with(
    h: &OrderedHistory,
    read: EventId,
    target: TxId,
    ancestors: &TxSet,
) -> BTreeSet<EventId> {
    let r_pos = h.pos(read).expect("read is in the history order");
    h.order
        .iter()
        .enumerate()
        .filter(|(i, _)| *i > r_pos)
        .filter(|(_, e)| {
            let tx = h.history.tx_of_event(**e).expect("ordered event has owner");
            !(tx == target || ancestors.contains(tx))
        })
        .map(|(_, e)| *e)
        .collect()
}

/// Deletes the doomed events *in place* under the caller's checkpoint:
/// every event at position `≥ from` of the order whose transaction is
/// outside the causal past of `target` is popped (in reverse order, so
/// each is the po-last of its session when reached), and transactions
/// reduced to their begin are retracted outright. Because the doomed
/// events of a session always form a suffix of its event sequence (doomed
/// transactions form a suffix of the session, and a straddling
/// transaction's kept events precede `from`), the result is structurally
/// identical to [`History::remove_events`] on the doomed set — same
/// logs, same wr relation, same rolling hash — without building a second
/// history. The caller's [`History::rollback`] restores everything.
pub(crate) fn pop_doomed(
    history: &mut History,
    order: &[EventId],
    from: usize,
    target: TxId,
    ancestors: &TxSet,
) {
    for p in (from..order.len()).rev() {
        let e = order[p];
        let tx = history.tx_of_event(e).expect("ordered event is live");
        if tx == target || ancestors.contains(tx) {
            continue;
        }
        let log = history.tx(tx);
        let session = log.session;
        debug_assert_eq!(history.last_tx_of_session(session), Some(tx));
        if log.events.len() == 1 {
            debug_assert_eq!(log.events[0].id, e, "only the begin is left");
            history.retract_begin(session);
        } else {
            history.unset_wr(e);
            history.pop_event(session);
        }
    }
}

/// `Swap(h_<, r, t)` (§5.2): produces the ordered history in which `r`
/// reads from `t`, all events after `r` outside the causal past of `t` are
/// removed, and the (now pending) transaction of `r` is moved to the end of
/// the history order.
pub fn swap(h: &OrderedHistory, read: EventId, target: TxId) -> OrderedHistory {
    swap_with(h, read, target, &h.history.causal_ancestors(target))
}

/// Like [`swap`], with the causal ancestors of `target` precomputed by the
/// caller.
pub fn swap_with(
    h: &OrderedHistory,
    read: EventId,
    target: TxId,
    ancestors: &TxSet,
) -> OrderedHistory {
    let doomed = doomed_events_with(h, read, target, ancestors);
    let mut history = h.history.remove_events(&doomed);
    // Redirect the wr dependency of the read to the target transaction.
    history.set_wr(read, target);
    let read_tx = history
        .tx_of_event(read)
        .expect("read survives the deletion");
    // The order keeps surviving events except those of the read's
    // transaction, then appends the read's transaction in program order.
    let mut order: Vec<EventId> = h
        .order
        .iter()
        .filter(|e| history.tx_of_event(**e).is_some_and(|t| t != read_tx))
        .copied()
        .collect();
    order.extend(history.tx(read_tx).events.iter().map(|e| e.id));
    OrderedHistory { history, order }
}

/// Checks whether the last event of a history is a commit and returns the
/// committed transaction; convenience used by the explorer.
pub fn last_committed_transaction(h: &OrderedHistory) -> Option<TxId> {
    let last = h.last()?;
    let ev = h.history.event(last)?;
    if matches!(ev.kind, EventKind::Commit) {
        h.history.tx_of_event(last)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_history::{Event, EventKind, History, SessionId, Value, Var};

    /// Builds the situation of Fig. 10b: session 0 has a committed reader of
    /// x and y (reading both from init), session 1 just committed a writer
    /// of x and y.
    fn fig10_history() -> OrderedHistory {
        let (x, y) = (Var(0), Var(1));
        let mut h = History::new([]);
        let mut order = Vec::new();
        let mut id = 0u32;
        let mut fresh = || {
            id += 1;
            EventId(id)
        };
        // t1 (session 0): read x <- init; read y <- init; commit
        let b = fresh();
        h.begin_transaction(SessionId(0), TxId(1), 0, Event::new(b, EventKind::Begin));
        order.push(b);
        let r1 = fresh();
        h.append_event(SessionId(0), Event::new(r1, EventKind::Read(x)));
        h.set_wr(r1, TxId::INIT);
        order.push(r1);
        let r2 = fresh();
        h.append_event(SessionId(0), Event::new(r2, EventKind::Read(y)));
        h.set_wr(r2, TxId::INIT);
        order.push(r2);
        let c = fresh();
        h.append_event(SessionId(0), Event::new(c, EventKind::Commit));
        order.push(c);
        // t2 (session 1): write x 2; write y 2; commit
        let b = fresh();
        h.begin_transaction(SessionId(1), TxId(2), 0, Event::new(b, EventKind::Begin));
        order.push(b);
        let w1 = fresh();
        h.append_event(
            SessionId(1),
            Event::new(w1, EventKind::Write(x, Value::Int(2))),
        );
        order.push(w1);
        let w2 = fresh();
        h.append_event(
            SessionId(1),
            Event::new(w2, EventKind::Write(y, Value::Int(2))),
        );
        order.push(w2);
        let c = fresh();
        h.append_event(SessionId(1), Event::new(c, EventKind::Commit));
        order.push(c);
        OrderedHistory { history: h, order }
    }

    #[test]
    fn reorderings_found_after_commit() {
        let h = fig10_history();
        let rs = compute_reorderings(&h);
        // Both reads of t1 can be re-ordered with the writer t2.
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().all(|r| r.target == TxId(2)));
    }

    #[test]
    fn no_reordering_when_last_event_is_not_commit() {
        let mut h = fig10_history();
        // Truncate the last commit.
        let last = h.order.pop().unwrap();
        let doomed: BTreeSet<EventId> = [last].into_iter().collect();
        h.history = h.history.remove_events(&doomed);
        assert!(compute_reorderings(&h).is_empty());
    }

    #[test]
    fn no_reordering_for_causal_dependents() {
        // If the reader reads from the writer, they are causally related and
        // cannot be swapped.
        let x = Var(0);
        let mut h = History::new([]);
        let mut order = Vec::new();
        let mut id = 0u32;
        let mut fresh = || {
            id += 1;
            EventId(id)
        };
        let b = fresh();
        h.begin_transaction(SessionId(0), TxId(1), 0, Event::new(b, EventKind::Begin));
        order.push(b);
        let w = fresh();
        h.append_event(
            SessionId(0),
            Event::new(w, EventKind::Write(x, Value::Int(1))),
        );
        order.push(w);
        let c = fresh();
        h.append_event(SessionId(0), Event::new(c, EventKind::Commit));
        order.push(c);
        let b = fresh();
        h.begin_transaction(SessionId(1), TxId(2), 0, Event::new(b, EventKind::Begin));
        order.push(b);
        let r = fresh();
        h.append_event(SessionId(1), Event::new(r, EventKind::Read(x)));
        h.set_wr(r, TxId(1));
        order.push(r);
        let w2 = fresh();
        h.append_event(
            SessionId(1),
            Event::new(w2, EventKind::Write(x, Value::Int(2))),
        );
        order.push(w2);
        let c = fresh();
        h.append_event(SessionId(1), Event::new(c, EventKind::Commit));
        order.push(c);
        let oh = OrderedHistory { history: h, order };
        // The read of t2 reads from t1; swapping t1's read... there is no
        // read in t1, and t2's read is causally after t1 so no reordering
        // with target t2 is possible for t1 (t1 has no reads anyway).
        assert!(compute_reorderings(&oh).is_empty());
    }

    #[test]
    fn swap_removes_non_causal_suffix_and_redirects_wr() {
        let h = fig10_history();
        let rs = compute_reorderings(&h);
        let first_read = rs
            .iter()
            .find(|r| {
                h.history
                    .event(r.read)
                    .and_then(|e| e.var())
                    .map(|v| v == Var(0))
                    .unwrap_or(false)
            })
            .copied()
            .unwrap();
        let swapped = swap(&h, first_read.read, first_read.target);
        swapped.check_invariants().unwrap();
        // The read's transaction is now pending, positioned last, and reads
        // from t2; its second read (of y) and its commit were removed.
        assert_eq!(swapped.history.num_pending(), 1);
        assert_eq!(swapped.history.wr_of(first_read.read), Some(TxId(2)));
        let t1 = swapped.history.tx(TxId(1));
        assert_eq!(t1.events.len(), 2, "begin + read(x) remain");
        assert!(t1.is_pending());
        // t2 is fully retained.
        assert_eq!(swapped.history.tx(TxId(2)).events.len(), 4);
        // t1's events are at the end of the order.
        let last_two: Vec<TxId> = swapped.order[swapped.order.len() - 2..]
            .iter()
            .map(|e| swapped.history.tx_of_event(*e).unwrap())
            .collect();
        assert_eq!(last_two, vec![TxId(1), TxId(1)]);
    }

    #[test]
    fn doomed_set_is_strictly_after_the_read() {
        let h = fig10_history();
        let rs = compute_reorderings(&h);
        let r = rs[0];
        let doomed = doomed_events(&h, r.read, r.target);
        assert!(!doomed.contains(&r.read));
        let r_pos = h.pos(r.read).unwrap();
        for e in &doomed {
            assert!(h.pos(*e).unwrap() > r_pos);
        }
    }

    #[test]
    fn last_committed_transaction_helper() {
        let h = fig10_history();
        assert_eq!(last_committed_transaction(&h), Some(TxId(2)));
    }
}
