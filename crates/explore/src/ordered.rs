//! Ordered histories: a history paired with a total order `<` on its events
//! (the *history order* of §4).
//!
//! The exploration algorithm maintains the invariant that the order is
//! consistent with `po`, `so` and `wr`, and that the events of every
//! transaction form a contiguous block (the scheduler keeps at most one
//! pending transaction at a time, and `Swap` moves whole transaction
//! suffixes).

use txdpor_history::{EventId, History, TxId};

/// A history together with a total order on its events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderedHistory {
    /// The underlying history.
    pub history: History,
    /// Event identifiers in history order (`<`), oldest first.
    pub order: Vec<EventId>,
}

impl OrderedHistory {
    /// Creates an ordered history with no events beyond the implicit init
    /// transaction.
    pub fn new(history: History) -> Self {
        debug_assert_eq!(history.num_events(), 0, "initial history must be empty");
        OrderedHistory {
            history,
            order: Vec::new(),
        }
    }

    /// Appends an event as the maximum of the history order.
    pub fn push(&mut self, e: EventId) {
        debug_assert!(!self.order.contains(&e), "event already ordered");
        self.order.push(e);
    }

    /// Position of an event in the order.
    pub fn pos(&self, e: EventId) -> Option<usize> {
        self.order.iter().position(|x| *x == e)
    }

    /// The last (maximal) event of the order.
    pub fn last(&self) -> Option<EventId> {
        self.order.last().copied()
    }

    /// Whether event `a` is strictly before event `b`.
    pub fn event_before(&self, a: EventId, b: EventId) -> bool {
        match (self.pos(a), self.pos(b)) {
            (Some(i), Some(j)) => i < j,
            _ => false,
        }
    }

    /// Position of the first event of a transaction, if it has any ordered
    /// event. The init transaction has no ordered events.
    pub fn tx_first_pos(&self, t: TxId) -> Option<usize> {
        self.order
            .iter()
            .position(|e| self.history.tx_of_event(*e) == Some(t))
    }

    /// Position of the last event of a transaction.
    pub fn tx_last_pos(&self, t: TxId) -> Option<usize> {
        self.order
            .iter()
            .rposition(|e| self.history.tx_of_event(*e) == Some(t))
    }

    /// Whether the whole transaction `t` is ordered before event `e`
    /// (`t < e` in the paper's notation). The init transaction is before
    /// every event.
    pub fn tx_before_event(&self, t: TxId, e: EventId) -> bool {
        if t.is_init() {
            return self.pos(e).is_some();
        }
        match (self.tx_last_pos(t), self.pos(e)) {
            (Some(i), Some(j)) => i < j,
            _ => false,
        }
    }

    /// Whether event `e` is ordered before the whole transaction `t`
    /// (`e < t`). False if `t` is the init transaction (which has no
    /// ordered events and conceptually precedes everything).
    pub fn event_before_tx(&self, e: EventId, t: TxId) -> bool {
        match (self.pos(e), self.tx_first_pos(t)) {
            (Some(i), Some(j)) => i < j,
            _ => false,
        }
    }

    /// A sort key for transactions by their position in the history order;
    /// the init transaction sorts first.
    pub fn tx_order_key(&self, t: TxId) -> i64 {
        if t.is_init() {
            return -1;
        }
        self.tx_last_pos(t).map(|p| p as i64).unwrap_or(-1)
    }

    /// Checks the structural invariants relating order and history; used in
    /// debug assertions and tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.order.len() != self.history.num_events() {
            return Err(format!(
                "order has {} events but history has {}",
                self.order.len(),
                self.history.num_events()
            ));
        }
        for e in &self.order {
            if self.history.tx_of_event(*e).is_none() {
                return Err(format!("ordered event {e} not in history"));
            }
        }
        // Program order is respected.
        for log in self.history.transactions() {
            let mut last = None;
            for ev in &log.events {
                let p = self
                    .pos(ev.id)
                    .ok_or_else(|| format!("event {} missing from order", ev.id))?;
                if let Some(prev) = last {
                    if p <= prev {
                        return Err(format!("po violated in order for {}", log.id));
                    }
                }
                last = Some(p);
            }
        }
        // Every read follows the transaction it reads from.
        for (r, w) in self.history.wr() {
            if !w.is_init() && !self.tx_before_event(w, r) {
                return Err(format!("read {r} does not follow its writer {w}"));
            }
        }
        // At most one pending transaction.
        if self.history.num_pending() > 1 {
            return Err("more than one pending transaction".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_history::{Event, EventKind, SessionId, Value, Var};

    fn sample() -> OrderedHistory {
        let x = Var(0);
        let mut h = History::new([]);
        let mut oh = OrderedHistory::new(h.clone());
        h.begin_transaction(
            SessionId(0),
            TxId(1),
            0,
            Event::new(EventId(1), EventKind::Begin),
        );
        h.append_event(
            SessionId(0),
            Event::new(EventId(2), EventKind::Write(x, Value::Int(1))),
        );
        h.append_event(SessionId(0), Event::new(EventId(3), EventKind::Commit));
        h.begin_transaction(
            SessionId(1),
            TxId(2),
            0,
            Event::new(EventId(4), EventKind::Begin),
        );
        h.append_event(SessionId(1), Event::new(EventId(5), EventKind::Read(x)));
        h.set_wr(EventId(5), TxId(1));
        h.append_event(SessionId(1), Event::new(EventId(6), EventKind::Commit));
        oh.history = h;
        for i in 1..=6 {
            oh.push(EventId(i));
        }
        oh
    }

    #[test]
    fn positions_and_comparisons() {
        let oh = sample();
        assert_eq!(oh.pos(EventId(1)), Some(0));
        assert_eq!(oh.pos(EventId(99)), None);
        assert_eq!(oh.last(), Some(EventId(6)));
        assert!(oh.event_before(EventId(2), EventId(5)));
        assert!(!oh.event_before(EventId(5), EventId(2)));
        assert_eq!(oh.tx_first_pos(TxId(2)), Some(3));
        assert_eq!(oh.tx_last_pos(TxId(1)), Some(2));
        assert!(oh.tx_before_event(TxId(1), EventId(5)));
        assert!(oh.tx_before_event(TxId::INIT, EventId(1)));
        assert!(oh.event_before_tx(EventId(3), TxId(2)));
        assert!(!oh.event_before_tx(EventId(5), TxId(1)));
        assert_eq!(oh.tx_order_key(TxId::INIT), -1);
        assert!(oh.tx_order_key(TxId(1)) < oh.tx_order_key(TxId(2)));
    }

    #[test]
    fn invariants_hold_on_sample() {
        let oh = sample();
        assert_eq!(oh.check_invariants(), Ok(()));
    }

    #[test]
    fn invariant_violation_detected() {
        let mut oh = sample();
        // Drop an event from the order: mismatch with the history.
        oh.order.pop();
        assert!(oh.check_invariants().is_err());
    }
}
