//! The baseline model checking algorithm `DFS(I)` used in the paper's
//! evaluation (§7.3): a standard depth-first traversal of the operational
//! semantics of §2.3 with no partial order reduction.
//!
//! For fairness with the swapping-based algorithms, interleavings are
//! restricted so that at most one transaction is pending at a time (the
//! paper applies the same restriction). The baseline may reach the same
//! history through many interleavings; the number of *end states* counts
//! completions with multiplicity while the number of *outputs* counts
//! distinct histories (read-from equivalence classes).

use std::collections::HashSet;
use std::time::{Duration, Instant};

use txdpor_analysis::DecomposingChecker;
use txdpor_history::{
    ConsistencyChecker, Event, EventId, EventKind, History, IsolationLevel, LevelSpec, SessionId,
    TxId, VarTable,
};
use txdpor_program::{initial_history, oracle_next, Program, SchedulerStep, TxStep};

use crate::config::ExplorationReport;
use crate::explorer::ExploreError;

/// Configuration of the DFS baseline.
#[derive(Clone, Debug)]
pub struct DfsConfig {
    /// Level specification of the operational semantics (uniform for the
    /// paper's `DFS(I)`; mixed per-transaction assignments are accepted).
    pub spec: LevelSpec,
    /// Wall-clock budget.
    pub timeout: Option<Duration>,
    /// Collect distinct output histories.
    pub collect_histories: bool,
}

impl DfsConfig {
    /// Baseline exploring the semantics under the given level.
    pub fn new(level: IsolationLevel) -> Self {
        Self::new_spec(LevelSpec::uniform(level))
    }

    /// Baseline exploring the semantics under a mixed-level specification.
    pub fn new_spec(spec: LevelSpec) -> Self {
        DfsConfig {
            spec,
            timeout: None,
            collect_histories: false,
        }
    }

    /// Sets a wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Collects distinct output histories in the report.
    pub fn collecting_histories(mut self) -> Self {
        self.collect_histories = true;
        self
    }
}

/// Runs the baseline `DFS(level)` exploration.
///
/// # Errors
///
/// Returns an error if the program cannot be replayed against an explored
/// history.
pub fn dfs_explore(
    program: &Program,
    config: DfsConfig,
) -> Result<ExplorationReport, ExploreError> {
    let mut dfs = Dfs {
        program,
        config: &config,
        vars: VarTable::new(),
        report: ExplorationReport::default(),
        seen: HashSet::new(),
        deadline: config.timeout.map(|t| Instant::now() + t),
        checker: DecomposingChecker::new(&config.spec, true),
    };
    let start = Instant::now();
    let mut initial = initial_history(program, &mut dfs.vars);
    dfs.explore(&mut initial)?;
    let stats = dfs.checker.stats();
    dfs.report.engine_checks = stats.checks;
    dfs.report.engine_memo_hits = stats.memo_hits;
    dfs.report.engine_stats = stats;
    dfs.report.components = dfs.checker.components();
    dfs.report.largest_component = dfs.checker.largest_component();
    let mut report = dfs.report;
    report.duration = start.elapsed();
    report.vars = dfs.vars;
    report.workers = 1;
    // For the baseline, "outputs" counts distinct histories.
    report.outputs = dfs.seen.len() as u64;
    Ok(report)
}

struct Dfs<'a> {
    program: &'a Program,
    config: &'a DfsConfig,
    vars: VarTable,
    report: ExplorationReport,
    /// Hash-compacted fingerprints of the distinct histories seen so far.
    /// The baseline reaches each history through many interleavings, so the
    /// visited set dwarfs every other allocation; 128-bit keys keep it to
    /// 16 bytes per distinct history instead of a deep-cloned fingerprint.
    seen: HashSet<(u64, u64)>,
    deadline: Option<Instant>,
    /// Stateful engine deciding the semantics' isolation level, reused
    /// for every trial history of the run. Wrapped in communication-graph
    /// decomposition: under a strong spec (PC/SI/SER present) each
    /// boolean check splits the trial history into independent
    /// components, shrinking the commit-order search exponentially; weak
    /// specs go straight to the wrapped incremental engine.
    checker: DecomposingChecker,
}

impl Dfs<'_> {
    fn timed_out(&mut self) -> bool {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.report.timed_out = true;
                return true;
            }
        }
        false
    }

    /// One node of the baseline search. The history is mutated in place:
    /// every branch extends `h` under a [`History::checkpoint`] and rolls
    /// back before trying the next branch, so the whole DFS runs on a
    /// single history arena with no clone per child.
    fn explore(&mut self, h: &mut History) -> Result<(), ExploreError> {
        if self.timed_out() {
            return Ok(());
        }
        self.report.explore_calls += 1;
        self.report.max_events = self.report.max_events.max(h.num_events());
        if h.num_pending() > 0 {
            // Continue the unique pending transaction.
            match oracle_next(self.program, h, &mut self.vars)? {
                SchedulerStep::Continue { session, step, .. } => match step {
                    TxStep::Read {
                        var,
                        internal_value: None,
                        ..
                    } => {
                        let ev = Event::new(EventId(h.max_event_id() + 1), EventKind::Read(var));
                        let mark = h.checkpoint();
                        h.append_event(session, ev.clone());
                        let trial = h.prepare_wr_trial(ev.id);
                        let mut any = false;
                        for writer in h.committed_writers_of(var) {
                            h.set_wr_trial(&trial, writer);
                            if self.checker.check(h) {
                                any = true;
                                self.explore(h)?;
                            }
                            h.unset_wr_trial(&trial);
                        }
                        h.rollback(mark);
                        if !any {
                            self.report.blocked += 1;
                        }
                        Ok(())
                    }
                    other => {
                        let is_write = matches!(other, TxStep::Write { .. });
                        let kind = match other {
                            TxStep::Read { var, .. } => EventKind::Read(var),
                            TxStep::Write { var, value } => EventKind::Write(var, value),
                            TxStep::Commit => EventKind::Commit,
                            TxStep::Abort => EventKind::Abort,
                        };
                        let ev = Event::new(EventId(h.max_event_id() + 1), kind);
                        let mark = h.checkpoint();
                        h.append_event(session, ev);
                        // Rule `write` of the operational semantics requires
                        // the extended history to remain consistent; for
                        // levels that are not causally extensible (SI, SER)
                        // this can prune the branch.
                        if is_write && !self.checker.check(h) {
                            self.report.blocked += 1;
                        } else {
                            self.explore(h)?;
                        }
                        h.rollback(mark);
                        Ok(())
                    }
                },
                _ => unreachable!("a pending transaction always yields a Continue step"),
            }
        } else {
            // Branch over every session that still has transactions to run.
            let mut any = false;
            for (s, sess) in self.program.sessions.iter().enumerate() {
                if self.timed_out() {
                    return Ok(());
                }
                let session = SessionId(s as u32);
                let started = h.session_txs(session).len();
                if started < sess.transactions.len() {
                    any = true;
                    let tx = TxId(h.max_tx_id() + 1);
                    let ev = Event::new(EventId(h.max_event_id() + 1), EventKind::Begin);
                    let mark = h.checkpoint();
                    h.begin_transaction(session, tx, started, ev);
                    self.explore(h)?;
                    h.rollback(mark);
                }
            }
            if !any {
                // Complete execution.
                self.report.end_states += 1;
                let new = self.seen.insert(h.fingerprint_hash());
                if new && self.config.collect_histories {
                    self.report.histories.push(h.clone());
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_program::dsl::*;

    fn two_writers_two_readers() -> Program {
        program(vec![
            session(vec![tx("w2", vec![write(g("x"), cint(2))])]),
            session(vec![tx("r1", vec![read("a", g("x"))])]),
            session(vec![tx("r2", vec![read("b", g("x"))])]),
            session(vec![tx("w4", vec![write(g("x"), cint(4))])]),
        ])
    }

    #[test]
    fn baseline_counts_interleavings_with_multiplicity() {
        let p = two_writers_two_readers();
        let report = dfs_explore(
            &p,
            DfsConfig::new(IsolationLevel::CausalConsistency).collecting_histories(),
        )
        .unwrap();
        // 9 distinct histories but many more end states (4! transaction
        // interleavings times read choices collapse onto them).
        assert_eq!(report.outputs, 9);
        assert!(report.end_states > report.outputs);
        assert_eq!(report.histories.len(), 9);
        for h in &report.histories {
            assert!(IsolationLevel::CausalConsistency.satisfies(h));
        }
    }

    #[test]
    fn baseline_respects_stronger_levels() {
        // Lost-update program: two counter increments in separate sessions.
        let incr = || {
            tx(
                "incr",
                vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
            )
        };
        let p = program(vec![session(vec![incr()]), session(vec![incr()])]);
        let ser = dfs_explore(&p, DfsConfig::new(IsolationLevel::Serializability)).unwrap();
        let cc = dfs_explore(&p, DfsConfig::new(IsolationLevel::CausalConsistency)).unwrap();
        // Under CC both increments may read the initial value (lost update):
        // three distinct histories. Serializability only admits the two
        // serial orders, which produce the same history up to read-from
        // equivalence... they differ in which transaction reads from which,
        // so two histories.
        assert_eq!(cc.outputs, 3);
        assert_eq!(ser.outputs, 2);
        assert!(ser.outputs < cc.outputs);
    }

    #[test]
    fn baseline_agrees_with_filtered_exploration_on_mixed_specs() {
        use std::collections::BTreeSet;
        // Lost-update program with one increment demoted to SER: the
        // baseline explores directly under the mixed spec, the
        // swapping-based algorithm explores CC and filters — both must
        // enumerate the same set of histories.
        let incr = || {
            tx(
                "incr",
                vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
            )
        };
        let p = program(vec![session(vec![incr()]), session(vec![incr()])]);
        let spec = LevelSpec::uniform(IsolationLevel::CausalConsistency).with_override(
            1,
            0,
            IsolationLevel::Serializability,
        );
        let baseline =
            dfs_explore(&p, DfsConfig::new_spec(spec.clone()).collecting_histories()).unwrap();
        let filtered = crate::explore(
            &p,
            crate::ExploreConfig::explore_ce_star_spec(
                LevelSpec::uniform(IsolationLevel::CausalConsistency),
                spec.clone(),
            )
            .collecting_histories(),
        )
        .unwrap();
        let a: BTreeSet<_> = baseline.histories.iter().map(|h| h.fingerprint()).collect();
        let b: BTreeSet<_> = filtered.histories.iter().map(|h| h.fingerprint()).collect();
        assert_eq!(a, b, "baseline and filtered exploration disagree");
        // The SER increment rules the lost update out only when it runs
        // second: three histories remain (vs 3 under uniform CC, 2 under
        // uniform SER).
        assert_eq!(baseline.outputs, 3);
        for h in &baseline.histories {
            assert!(spec.satisfies(h));
        }
    }

    #[test]
    fn baseline_timeout() {
        let p = two_writers_two_readers();
        let report = dfs_explore(
            &p,
            DfsConfig::new(IsolationLevel::CausalConsistency).with_timeout(Duration::ZERO),
        )
        .unwrap();
        assert!(report.timed_out);
    }

    #[test]
    fn config_builders() {
        let c = DfsConfig::new(IsolationLevel::ReadAtomic)
            .with_timeout(Duration::from_secs(1))
            .collecting_histories();
        assert_eq!(c.spec, LevelSpec::uniform(IsolationLevel::ReadAtomic));
        assert!(c.collect_histories);
        assert!(c.timeout.is_some());
    }
}
