//! The `Optimality` condition restricting re-orderings (§5.3), together
//! with its two ingredients: the `swapped` predicate and the
//! `readLatest` predicate.
//!
//! Without this restriction the exploration is still sound and complete but
//! may enumerate the same history several times (see Fig. 12 and Fig. 13
//! for the two sources of redundancy the condition eliminates). The
//! condition requires that (i) the swapped history is consistent with the
//! exploration isolation level, and (ii) every read deleted by the swap, as
//! well as the re-ordered read itself, is not already swapped and reads
//! from the causally latest valid write.

use txdpor_history::{ConsistencyChecker, EventId, EventKind, TxId, TxSet};

use crate::ordered::OrderedHistory;
use crate::swap::pop_doomed;

/// Oracle-order key of a transaction: `(session, program index)`, with the
/// init transaction smaller than everything.
fn oracle_key(h: &OrderedHistory, t: TxId) -> (i64, i64) {
    if t.is_init() {
        return (-1, -1);
    }
    let log = h.history.tx(t);
    (log.session.0 as i64, log.program_index as i64)
}

/// The `swapped(h_<, r)` predicate (§5.3): whether the read `r` is the
/// pivot of a previous swap. A read is swapped when (1) it reads from a
/// transaction that follows it in the oracle order but precedes it in the
/// history order, (2) no transaction that precedes `tr(r)` in the oracle
/// order and precedes `r` in the history order is a causal successor of the
/// transaction read, (3) `r` is the first read of its transaction reading
/// from that transaction, and (4) no po-earlier read of the same
/// transaction is itself a swap pivot.
///
/// Condition (4) extends the paper's condition (3) to its stated intent
/// ("later read events from the same transaction as a swapped read must not
/// be considered as swapped"): once a transaction has been re-ordered at an
/// earlier read, the re-executed reads that follow it may read from
/// oracle-later transactions through `ValidWrites` without ever having been
/// the pivot of a swap; classifying them as swapped would disable
/// re-orderings that completeness requires.
pub fn swapped(h: &OrderedHistory, read: EventId) -> bool {
    if !swapped_pivot(h, read) {
        return false;
    }
    // Condition (4): r is the po-earliest swap pivot of its transaction.
    let reader_tx = h
        .history
        .tx_of_event(read)
        .expect("read belongs to a transaction");
    let log = h.history.tx(reader_tx);
    !log.read_events()
        .filter(|other| other.id != read && log.po_before(other.id, read))
        .any(|other| swapped_pivot(h, other.id))
}

/// Conditions (1)–(3) of the `swapped` predicate.
fn swapped_pivot(h: &OrderedHistory, read: EventId) -> bool {
    let Some(writer) = h.history.wr_of(read) else {
        return false;
    };
    let reader_tx = h
        .history
        .tx_of_event(read)
        .expect("read belongs to a transaction");
    // Condition (1): writer before r in history order, after r in oracle order.
    if !h.tx_before_event(writer, read) {
        return false;
    }
    if oracle_key(h, writer) <= oracle_key(h, reader_tx) {
        return false;
    }
    // Condition (2): no transaction t' with t' <_or tr(r), t' < r in history
    // order, and (writer, t') ∈ (so ∪ wr)+. One forward BFS from the writer
    // answers every membership query.
    let writer_descendants = h.history.causal_descendants(writer);
    for t_prime in h.history.tx_ids() {
        if oracle_key(h, t_prime) < oracle_key(h, reader_tx)
            && !h.event_before_tx(read, t_prime)
            && writer_descendants.contains(t_prime)
        {
            return false;
        }
    }
    // Condition (3): no earlier read of the same transaction reads from the
    // same writer.
    let log = h.history.tx(reader_tx);
    for other in log.read_events() {
        if other.id != read
            && log.po_before(other.id, read)
            && h.history.wr_of(other.id) == Some(writer)
        {
            return false;
        }
    }
    true
}

/// The `readLatest_I(h_<, r, t)` predicate (§5.3): whether `r` currently
/// reads from the causally latest valid transaction, i.e. the maximal
/// transaction (w.r.t. the history order) among those that write `var(r)`,
/// belong to the causal past of `tr(r)` once the events at or after `r`
/// outside the causal past of `t` are removed, and keep the history
/// consistent with the checker's level when `r` reads from them.
pub fn read_latest(
    h: &mut OrderedHistory,
    read: EventId,
    target: TxId,
    target_ancestors: &TxSet,
    checker: &mut dyn ConsistencyChecker,
) -> bool {
    let Some(current_writer) = h.history.wr_of(read) else {
        return false;
    };
    let read_event = h
        .history
        .event(read)
        .expect("read is in the history")
        .clone();
    let var = read_event.var().expect("read has a variable");
    let reader_tx = h
        .history
        .tx_of_event(read)
        .expect("read belongs to a transaction");
    let reader_session = h.history.tx(reader_tx).session;
    let r_pos = h.pos(read).expect("read is ordered");

    // h' = h \ { e | r ≤ e ∧ (tr(e), t) ∉ (so ∪ wr)* }, built in place
    // under a checkpoint instead of copying the history out of the arena
    // (the read itself is always deleted: its transaction is never in the
    // causal past of `t` when this predicate is evaluated).
    let history = &mut h.history;
    let mark = history.checkpoint();
    pop_doomed(history, &h.order, r_pos, target, target_ancestors);
    if !history.contains_tx(reader_tx) {
        // The reader's prefix always survives (its begin precedes r), so
        // this should not happen; be conservative if it does.
        history.rollback(mark);
        return false;
    }

    // Candidate writers: in the causal past of tr(r) within h' (excluding
    // the wr dependency of r itself, which was deleted together with r),
    // writing var(r), and keeping the history consistent when read from.
    // The trial `h' ⊕ r ⊕ wr(t', r)` extends the same arena and each
    // candidate's wr edge is set, checked and unset, so the consistency
    // engine syncs incrementally across the whole loop; the rollback
    // restores the node's history bit-for-bit.
    let reader_ancestors = history.causal_ancestors(reader_tx);
    let candidates: Vec<TxId> = std::iter::once(TxId::INIT)
        .chain(history.tx_ids())
        .collect();
    history.append_event(reader_session, read_event);
    let trial = history.prepare_wr_trial(read);
    let mut valid: Vec<TxId> = Vec::new();
    for t_prime in candidates {
        if !history.writes_var(t_prime, var) {
            continue;
        }
        if !t_prime.is_init() && t_prime != reader_tx && !reader_ancestors.contains(t_prime) {
            continue;
        }
        history.set_wr_trial(&trial, t_prime);
        let consistent = checker.check(history);
        history.unset_wr_trial(&trial);
        if consistent {
            valid.push(t_prime);
        }
    }
    history.rollback(mark);
    // The causally latest valid writer is the one whose last event comes
    // latest in the (restored) history order: the first event found by a
    // backward scan. `init` has no ordered events and only wins alone.
    if valid.is_empty() {
        return false;
    }
    let latest = h
        .order
        .iter()
        .rev()
        .find_map(|e| {
            let t = h.history.tx_of_event(*e).expect("ordered event is live");
            valid.contains(&t).then_some(t)
        })
        .unwrap_or(TxId::INIT);
    latest == current_writer
}

/// The full `Optimality(h_<, r, t)` condition (§5.3): the swapped history is
/// consistent with the checker's isolation level, and every deleted read
/// (plus `r` itself) is not already swapped and reads from the causally
/// latest valid write.
///
/// The consistency queries are funnelled through the caller's
/// [`ConsistencyChecker`] engine so that scratch buffers and the
/// fingerprint memo amortise across the whole exploration.
///
/// Returns the swapped ordered history when the condition holds so that the
/// caller does not need to recompute it.
pub fn optimality(
    h: &mut OrderedHistory,
    read: EventId,
    target: TxId,
    target_ancestors: &TxSet,
    checker: &mut dyn ConsistencyChecker,
    full_condition: bool,
) -> Option<OrderedHistory> {
    // Consistency of the swapped history, decided on an in-place trial:
    // pop the doomed suffix, redirect the read, check, roll back. The
    // trial history is structurally identical to `swap(h, read, target)`
    // — same logs, same wr, same rolling hash — so the verdict (and even
    // the engine's memo entry) transfers to the history materialised
    // below, which is only built once the whole condition passes.
    let r_pos = h.pos(read).expect("read is ordered");
    let mark = h.history.checkpoint();
    pop_doomed(
        &mut h.history,
        &h.order,
        r_pos + 1,
        target,
        target_ancestors,
    );
    h.history.set_wr(read, target);
    let consistent = checker.check(&h.history);
    h.history.rollback(mark);
    if !consistent {
        return None;
    }
    if full_condition {
        // Every read deleted by the swap, plus `r` itself, must not be
        // already swapped and must read from the causally latest valid
        // write.
        let mut to_check: Vec<EventId> = vec![read];
        for e in &h.order[r_pos + 1..] {
            let tx = h.history.tx_of_event(*e).expect("ordered event has owner");
            if tx == target || target_ancestors.contains(tx) {
                continue;
            }
            let ev = h.history.event(*e).expect("ordered event is live");
            if matches!(ev.kind, EventKind::Read(_)) && h.history.wr_of(*e).is_some() {
                to_check.push(*e);
            }
        }
        for r_prime in to_check {
            if swapped(h, r_prime) {
                return None;
            }
            if !read_latest(h, r_prime, target, target_ancestors, checker) {
                return None;
            }
        }
    }
    Some(materialize_swap(h, read, target, target_ancestors))
}

/// Materialises `Swap(h, r, t)` (§5.2) for an accepted re-ordering by
/// re-running the in-place trial and taking a flat arena clone of it —
/// cheaper than re-building the pruned history event by event
/// ([`History::remove_events`]), whose rolling-hash mixing dominates. The
/// result is identical to [`crate::swap::swap`] (asserted by tests).
fn materialize_swap(
    h: &mut OrderedHistory,
    read: EventId,
    target: TxId,
    target_ancestors: &TxSet,
) -> OrderedHistory {
    let r_pos = h.pos(read).expect("read is ordered");
    let mark = h.history.checkpoint();
    pop_doomed(
        &mut h.history,
        &h.order,
        r_pos + 1,
        target,
        target_ancestors,
    );
    h.history.set_wr(read, target);
    let read_tx = h
        .history
        .tx_of_event(read)
        .expect("read survives the deletion");
    // The order keeps surviving events except those of the read's (now
    // pending) transaction, then appends that transaction in program order.
    let mut order: Vec<EventId> = h
        .order
        .iter()
        .filter(|e| h.history.tx_of_event(**e).is_some_and(|t| t != read_tx))
        .copied()
        .collect();
    order.extend(h.history.tx(read_tx).events.iter().map(|e| e.id));
    let history = h.history.clone();
    h.history.rollback(mark);
    OrderedHistory { history, order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swap::compute_reorderings;
    use txdpor_history::{
        engine_for, Event, EventKind, History, IsolationLevel, SessionId, Value, Var,
    };

    struct Builder {
        h: History,
        order: Vec<EventId>,
        next_event: u32,
        next_tx: u32,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                h: History::new([]),
                order: Vec::new(),
                next_event: 0,
                next_tx: 0,
            }
        }
        fn fresh(&mut self) -> EventId {
            self.next_event += 1;
            EventId(self.next_event)
        }
        fn begin(&mut self, s: u32) -> TxId {
            self.next_tx += 1;
            let id = TxId(self.next_tx);
            let idx = self.h.session_txs(SessionId(s)).len();
            let e = Event::new(self.fresh(), EventKind::Begin);
            self.order.push(e.id);
            self.h.begin_transaction(SessionId(s), id, idx, e);
            id
        }
        fn write(&mut self, s: u32, x: Var, v: i64) {
            let e = Event::new(self.fresh(), EventKind::Write(x, Value::Int(v)));
            self.order.push(e.id);
            self.h.append_event(SessionId(s), e);
        }
        fn read(&mut self, s: u32, x: Var, from: TxId) -> EventId {
            let e = Event::new(self.fresh(), EventKind::Read(x));
            let id = e.id;
            self.order.push(id);
            self.h.append_event(SessionId(s), e);
            self.h.set_wr(id, from);
            id
        }
        fn commit(&mut self, s: u32) {
            let e = Event::new(self.fresh(), EventKind::Commit);
            self.order.push(e.id);
            self.h.append_event(SessionId(s), e);
        }
        fn done(self) -> OrderedHistory {
            OrderedHistory {
                history: self.h,
                order: self.order,
            }
        }
    }

    /// Fig. 12: two reading sessions and two writing sessions on x.
    /// History: t1=write(x,2) committed; t2=read(x)<-init; t3=read(x) with a
    /// given wr; t4=write(x,4) just committed.
    fn fig12(t3_reads_from_init: bool) -> (OrderedHistory, EventId, EventId) {
        let x = Var(0);
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 2);
        b.commit(0);
        b.begin(1);
        let r2 = b.read(1, x, TxId::INIT);
        b.commit(1);
        b.begin(2);
        let r3 = if t3_reads_from_init {
            b.read(2, x, TxId::INIT)
        } else {
            b.read(2, x, t1)
        };
        b.commit(2);
        b.begin(3);
        b.write(3, x, 4);
        b.commit(3);
        (b.done(), r2, r3)
    }

    #[test]
    fn read_latest_distinguishes_fig12_branches() {
        let mut ck = engine_for(IsolationLevel::CausalConsistency);
        // In the branch where t3 reads from init, both deleted reads read
        // from their causally latest write (init is the only causal writer),
        // so the swap of (r2, t4) is enabled.
        let (mut h, r2, r3) = fig12(true);
        let target = TxId(4);
        let anc = h.history.causal_ancestors(target);
        let snapshot = h.clone();
        assert!(read_latest(&mut h, r2, target, &anc, ck.as_mut()));
        assert!(read_latest(&mut h, r3, target, &anc, ck.as_mut()));
        assert!(optimality(&mut h, r2, target, &anc, ck.as_mut(), true).is_some());
        assert_eq!(h, snapshot, "in-place trials must restore the history");

        // In the branch where t3 reads from t1: once the wr edge of r3
        // itself is excluded, t1 is not in r3's causal past, so the
        // causally latest valid writer is init while r3 reads from t1 —
        // the swap must be disabled (this is exactly Fig. 12's argument).
        let (mut h, r2, r3) = fig12(false);
        let anc = h.history.causal_ancestors(target);
        assert!(read_latest(&mut h, r2, target, &anc, ck.as_mut()));
        assert!(!read_latest(&mut h, r3, target, &anc, ck.as_mut()));
        assert!(optimality(&mut h, r2, target, &anc, ck.as_mut(), true).is_none());
        // The ablation mode (consistency only) would still allow it.
        assert!(optimality(&mut h, r2, target, &anc, ck.as_mut(), false).is_some());
    }

    /// Fig. 13: four single-transaction sessions; after swapping t3 before
    /// t2, the read of t2 is "swapped" and must not be deleted by a later
    /// swap.
    #[test]
    fn swapped_reads_block_further_swaps() {
        let (x, y) = (Var(0), Var(1));
        let mut ck = engine_for(IsolationLevel::CausalConsistency);
        // History h1 of Fig. 13c: t1=read(x)<-init; t3=write(y,3) committed;
        // t2=read(y)<-t3 (swapped earlier: t3 is after t2 in oracle order);
        // t4=write(x,4) just committed.
        let mut b = Builder::new();
        b.begin(0); // session 0: t1 = read x
        let r1 = b.read(0, x, TxId::INIT);
        b.commit(0);
        // session 2: t3 = write y (oracle position (2,0))
        b.begin(2);
        b.write(2, y, 3);
        b.commit(2);
        let t3 = TxId(2);
        // session 1: t2 = read y, reading from t3 which is later in oracle order
        b.begin(1);
        let r2 = b.read(1, y, t3);
        b.commit(1);
        // session 3: t4 = write x
        b.begin(3);
        b.write(3, x, 4);
        b.commit(3);
        let t4 = TxId(4);
        let h1 = b.done();
        h1.check_invariants().unwrap();

        // r2 is a swapped read; r1 is not.
        assert!(swapped(&h1, r2));
        assert!(!swapped(&h1, r1));

        // Swapping (r1, t4) would delete r2 (t2 is not in t4's causal past),
        // and r2 is swapped, so Optimality rejects it.
        let mut h1 = h1;
        let reorderings = compute_reorderings(&h1);
        assert!(reorderings.iter().any(|p| p.read == r1 && p.target == t4));
        let anc = h1.history.causal_ancestors(t4);
        assert!(optimality(&mut h1, r1, t4, &anc, ck.as_mut(), true).is_none());
        // Without the swapped-check ablation it would be allowed.
        assert!(optimality(&mut h1, r1, t4, &anc, ck.as_mut(), false).is_some());
    }

    #[test]
    fn materialized_swap_equals_swap() {
        // The accepted-path materialisation (flat clone of the in-place
        // trial) must produce exactly `Swap(h, r, t)`: same history, same
        // order, same rolling hash (so memo entries transfer).
        let (mut h, r2, _) = fig12(true);
        let target = TxId(4);
        let anc = h.history.causal_ancestors(target);
        let mut ck = engine_for(IsolationLevel::CausalConsistency);
        let got = optimality(&mut h, r2, target, &anc, ck.as_mut(), true)
            .expect("fig12 swap of (r2, t4) is accepted");
        let want = crate::swap::swap(&h, r2, target);
        assert_eq!(got.history, want.history);
        assert_eq!(got.order, want.order);
        assert_eq!(got.history.live_hash(), want.history.live_hash());
        got.check_invariants().unwrap();
    }

    #[test]
    fn reads_from_oracle_predecessors_are_not_swapped() {
        // A read from a transaction earlier in the oracle order is never
        // considered swapped.
        let x = Var(0);
        let mut b = Builder::new();
        let t1 = b.begin(0);
        b.write(0, x, 1);
        b.commit(0);
        b.begin(1);
        let r = b.read(1, x, t1);
        b.commit(1);
        let h = b.done();
        assert!(!swapped(&h, r));
    }

    #[test]
    fn optimality_rejects_inconsistent_swaps() {
        // A reader of x commits reading the initial value, then a writer of
        // x commits; swapping the read towards the writer yields a
        // consistent history, so Optimality returns the swapped history
        // (the inconsistent-swap rejection is exercised by the explorer
        // tests on stronger levels).
        let x = Var(0);
        let mut b = Builder::new();
        b.begin(0);
        let r = b.read(0, x, TxId::INIT);
        b.commit(0);
        b.begin(1);
        b.write(1, x, 1);
        b.commit(1);
        let mut h = b.done();
        let t2 = TxId(2);
        let mut ck = engine_for(IsolationLevel::CausalConsistency);
        let anc = h.history.causal_ancestors(t2);
        let res = optimality(&mut h, r, t2, &anc, ck.as_mut(), true);
        assert!(res.is_some());
        let sh = res.unwrap();
        sh.check_invariants().unwrap();
        assert_eq!(sh.history.wr_of(r), Some(t2));
    }
}
