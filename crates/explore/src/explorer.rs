//! The swapping-based stateless model checking algorithm `explore-ce` and
//! its filtered variant `explore-ce*` (Algorithms 1 and 2, §§4–6).

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use txdpor_analysis::{DecomposingChecker, ProgramFootprints};
use txdpor_history::{
    engine_for_spec_with, ConsistencyChecker, EdgeReason, Event, EventId, EventKind, History,
    HistoryFingerprint, SessionId, SharedMemo, TxId, Var, VarTable, Verdict,
};
use txdpor_program::{
    initial_history, oracle_next, replay_all, Program, SchedulerStep, SemanticsError, TxStep,
};

use crate::assertion::{AssertionCtx, AssertionFn};
use crate::config::{ExplorationReport, ExploreConfig};
use crate::optimality::optimality;
use crate::ordered::OrderedHistory;
use crate::steal::{Backoff, StealPool};
use crate::swap::compute_reorderings_and_ancestors;

/// Seed the parallel frontier with this many tasks per worker before
/// handing the queue over, so that uneven subtree sizes still keep every
/// worker busy.
const SEED_TASKS_PER_WORKER: usize = 8;

/// Error raised by an exploration.
#[derive(Clone, Debug, PartialEq)]
pub enum ExploreError {
    /// The program and the explored history disagree (a replay error).
    Semantics(SemanticsError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Semantics(e) => write!(f, "semantics error: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<SemanticsError> for ExploreError {
    fn from(e: SemanticsError) -> Self {
        ExploreError::Semantics(e)
    }
}

/// Runs the swapping-based exploration of `program` under `config`.
///
/// For `config = ExploreConfig::explore_ce(I)` with `I` prefix-closed and
/// causally extensible, the exploration is `I`-sound, `I`-complete,
/// strongly optimal and polynomial space (Theorem 5.1). For
/// `config = ExploreConfig::explore_ce_star(I0, I)` it enumerates the
/// histories of `I0` and outputs those consistent with `I`
/// (Corollary 6.2).
///
/// # Errors
///
/// Returns an error if the program cannot be replayed against an explored
/// history (which indicates a bug in the program model, e.g. an unbound
/// local variable).
///
/// # Examples
///
/// ```
/// use txdpor_explore::{explore, ExploreConfig};
/// use txdpor_history::IsolationLevel;
/// use txdpor_program::dsl::*;
///
/// // Two sessions racing on x: a writer and a reader.
/// let p = program(vec![
///     session(vec![tx("w", vec![write(g("x"), cint(1))])]),
///     session(vec![tx("r", vec![read("a", g("x"))])]),
/// ]);
/// let report = explore(&p, ExploreConfig::explore_ce(IsolationLevel::CausalConsistency))?;
/// // The reader sees either the initial value or the write: two histories.
/// assert_eq!(report.outputs, 2);
/// # Ok::<(), txdpor_explore::ExploreError>(())
/// ```
pub fn explore(
    program: &Program,
    config: ExploreConfig,
) -> Result<ExplorationReport, ExploreError> {
    explore_with_assertion(program, config, None)
}

/// Like [`explore`], additionally evaluating `assertion` on every output
/// history and counting violations.
///
/// # Errors
///
/// Same as [`explore`].
pub fn explore_with_assertion(
    program: &Program,
    config: ExploreConfig,
    assertion: Option<&AssertionFn>,
) -> Result<ExplorationReport, ExploreError> {
    assert!(
        config.exploration.is_causally_extensible(),
        "the exploration spec must be causally extensible; use explore_ce_star for {}",
        config.exploration
    );
    let start = Instant::now();
    let workers =
        config.effective_workers(std::thread::available_parallelism().ok().map(|n| n.get()));
    if workers > 1 {
        return explore_parallel(program, &config, assertion, workers, start);
    }
    let mut explorer = Explorer::new(program, &config, assertion);
    let initial = OrderedHistory::new(initial_history(program, &mut explorer.vars));
    explorer.explore(initial)?;
    explorer.record_engine_stats();
    let mut report = explorer.report;
    report.duration = start.elapsed();
    report.workers = 1;
    report.vars = explorer.vars;
    Ok(report)
}

/// Parallel `explore-ce` over a work-stealing pool: a breadth-first
/// seeding pass expands the exploration tree from the root until the
/// frontier holds enough disjoint subtrees, distributes them round-robin
/// across per-worker LIFO deques ([`StealPool`]), and lets
/// `std::thread::scope` workers — each with its own consistency engines
/// and event counters — traverse their subtrees depth-first, stealing the
/// shallowest nodes of a busy sibling when they run dry. Termination is
/// detected by the pool's in-flight counter, so skewed trees keep every
/// worker busy to the end instead of starving all but one. A
/// [`SharedMemo`] attached to every worker's engines lets siblings reuse
/// each other's consistency verdicts.
///
/// The exploration tree is identical to the serial one (children of a node
/// depend only on that node, and every node is processed exactly once no
/// matter how tasks migrate), so the merged report agrees with a serial
/// run on every deterministic quantity: end states, outputs, blocked
/// reads, explore calls and the set of output-history fingerprints. Only
/// wall clock, the order of collected histories and the choice of the
/// recorded violating history may differ.
fn explore_parallel(
    program: &Program,
    config: &ExploreConfig,
    assertion: Option<&AssertionFn>,
    workers: usize,
    start: Instant,
) -> Result<ExplorationReport, ExploreError> {
    let shared_memo = Arc::new(SharedMemo::new(workers));
    let mut seeder = Explorer::new(program, config, assertion);
    seeder.attach_shared_memo(&shared_memo);
    let initial = OrderedHistory::new(initial_history(program, &mut seeder.vars));
    let mut frontier: VecDeque<OrderedHistory> = VecDeque::from([initial]);
    let target = workers * SEED_TASKS_PER_WORKER;
    while !frontier.is_empty() && frontier.len() < target && !seeder.timed_out() {
        let h = frontier.pop_front().expect("frontier is non-empty");
        seeder.report.explore_calls += 1;
        seeder.report.max_events = seeder.report.max_events.max(h.order.len());
        match seeder.expand(h)? {
            Expansion::Complete(h) => seeder.handle_complete(&h),
            Expansion::Children(children) => frontier.extend(children),
        }
    }

    // Never spawn threads that could not possibly receive work: a frontier
    // smaller than the worker count caps the spawn (an empty frontier — the
    // seeding pass finished the exploration — skips the worker phase
    // entirely).
    let spawn = config.spawn_workers(frontier.len()).min(workers);
    let deadline = seeder.deadline;
    let vars_snapshot = seeder.vars.clone();
    let pool: StealPool<OrderedHistory> = StealPool::new(spawn.max(1));
    pool.seed(frontier);
    type WorkerResult = (ExplorationReport, HashSet<HistoryFingerprint>, VarTable);
    let results: Mutex<Vec<WorkerResult>> = Mutex::new(Vec::new());
    let failed = AtomicBool::new(false);
    let failure: Mutex<Option<ExploreError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for i in 0..spawn {
            let vars = vars_snapshot.clone();
            let (pool, results, failed, failure) = (&pool, &results, &failed, &failure);
            let shared_memo = Arc::clone(&shared_memo);
            std::thread::Builder::new()
                .name(format!("explore-worker-{i}"))
                .spawn_scoped(scope, move || {
                    let mut worker = Explorer::new(program, config, assertion);
                    worker.vars = vars;
                    worker.deadline = deadline;
                    worker.attach_shared_memo(&shared_memo);
                    let mut backoff = Backoff::default();
                    loop {
                        if failed.load(Ordering::Acquire) || pool.is_poisoned() {
                            break;
                        }
                        // Event/transaction identifiers only need to be
                        // unique within a branch; the history tracks its own
                        // id high-water marks (fingerprints are
                        // identifier-independent), so a stolen node explores
                        // identically wherever it lands.
                        if let Some(h) = pool.pop_local(i) {
                            backoff.reset();
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    worker.process_task(h, pool, i)
                                }));
                            match outcome {
                                Ok(Ok(())) => continue,
                                Ok(Err(e)) => {
                                    *failure.lock().expect("failure lock") = Some(e);
                                    failed.store(true, Ordering::Release);
                                    break;
                                }
                                Err(payload) => {
                                    // The panicking task never reached its
                                    // `finish_task`: drain its in-flight
                                    // slot and poison the pool so siblings
                                    // exit instead of spinning on a count
                                    // that can no longer reach zero, then
                                    // re-raise so the scope join propagates
                                    // the panic to the caller.
                                    pool.finish_task();
                                    pool.poison();
                                    std::panic::resume_unwind(payload);
                                }
                            }
                        }
                        if pool.steal_into(i) > 0 {
                            backoff.reset();
                            continue;
                        }
                        if pool.is_done() {
                            break;
                        }
                        backoff.idle();
                    }
                    worker.record_engine_stats();
                    results.lock().expect("results lock").push((
                        worker.report,
                        worker.seen,
                        worker.vars,
                    ));
                })
                .expect("spawning an exploration worker succeeds");
        }
    });
    if let Some(e) = failure.into_inner().expect("failure lock") {
        return Err(e);
    }

    seeder.record_engine_stats();
    let mut report = seeder.report;
    let mut vars = seeder.vars;
    let mut seen = seeder.seen;
    for (worker_report, worker_seen, worker_vars) in results.into_inner().expect("results lock") {
        merge_worker(&mut report, &mut vars, worker_report, &worker_vars);
        seen.extend(worker_seen);
    }
    if config.track_duplicates {
        report.duplicate_outputs = report.outputs - seen.len() as u64;
    }
    report.duration = start.elapsed();
    report.workers = spawn.max(1);
    report.steals = pool.steals();
    report.vars = vars;
    Ok(report)
}

/// Folds one worker's report into the merged report, translating the
/// worker's variable identifiers into the merged [`VarTable`].
fn merge_worker(
    report: &mut ExplorationReport,
    vars: &mut VarTable,
    worker: ExplorationReport,
    worker_vars: &VarTable,
) {
    // Worker variable id (dense, allocation-ordered) → merged variable id.
    let map: Vec<Var> = worker_vars
        .iter()
        .map(|(_, name)| vars.intern(name))
        .collect();
    let remap = |x: Var| map[x.0 as usize];
    report.explore_calls += worker.explore_calls;
    report.end_states += worker.end_states;
    report.engine_checks += worker.engine_checks;
    report.engine_memo_hits += worker.engine_memo_hits;
    report.engine_stats.absorb(&worker.engine_stats);
    report.outputs += worker.outputs;
    report.blocked += worker.blocked;
    report.assertion_violations += worker.assertion_violations;
    report.timed_out |= worker.timed_out;
    report.max_events = report.max_events.max(worker.max_events);
    report.statically_pruned += worker.statically_pruned;
    report.components = report.components.max(worker.components);
    report.largest_component = report.largest_component.max(worker.largest_component);
    report
        .histories
        .extend(worker.histories.iter().map(|h| h.map_vars(remap)));
    if report.violating_history.is_none() {
        report.violating_history = worker.violating_history.map(|h| h.map_vars(remap));
    }
    if report.first_rejection.is_none() {
        report.first_rejection = worker.first_rejection.map(|mut v| {
            for e in &mut v.cycle {
                if let EdgeReason::Forced(i) = &mut e.reason {
                    i.var = remap(i.var);
                }
            }
            v
        });
    }
}

/// The children of an exploration-tree node, or the signal that the node is
/// a complete execution.
enum Expansion {
    /// The history is complete: no session has a next step. Carries the
    /// node back to the caller (expansion takes the node by value so that
    /// single-child steps extend it in place instead of cloning). Boxed:
    /// the flat-arena history is a dozen vector headers inline, and this
    /// variant rides in every expansion result.
    Complete(Box<OrderedHistory>),
    /// The node's children in serial visit order: each extension of the
    /// history followed by its `Optimality`-approved re-orderings.
    Children(Vec<OrderedHistory>),
}

struct Explorer<'a> {
    program: &'a Program,
    config: &'a ExploreConfig,
    assertion: Option<&'a AssertionFn>,
    vars: VarTable,
    report: ExplorationReport,
    seen: HashSet<HistoryFingerprint>,
    deadline: Option<Instant>,
    /// Engine deciding the exploration level, shared by `ValidWrites` and
    /// the `Optimality` checks of this explorer.
    checker: Box<dyn ConsistencyChecker>,
    /// Engine deciding the output level (`explore-ce*` only), wrapped in
    /// communication-graph decomposition: complete histories that split
    /// are checked component by component, and the wrapper's counters
    /// feed the report's `components` statistics.
    output_checker: Option<DecomposingChecker>,
    /// Static per-transaction-type read/write footprints of the program:
    /// the independence relation consulted before scanning reordering
    /// candidates, and (in debug builds) the soundness reference every
    /// complete execution is checked against.
    footprints: ProgramFootprints,
}

impl<'a> Explorer<'a> {
    fn new(
        program: &'a Program,
        config: &'a ExploreConfig,
        assertion: Option<&'a AssertionFn>,
    ) -> Self {
        Explorer {
            program,
            config,
            assertion,
            vars: VarTable::new(),
            report: ExplorationReport::default(),
            seen: HashSet::new(),
            deadline: config.timeout.map(|t| Instant::now() + t),
            checker: engine_for_spec_with(&config.exploration, config.memoize),
            output_checker: (config.output != config.exploration)
                .then(|| DecomposingChecker::new(&config.output, config.memoize)),
            footprints: ProgramFootprints::analyze(program),
        }
    }

    /// Fresh identifiers are derived from the history's id high-water marks
    /// (ids only need to be unique within a branch; fingerprints are
    /// identifier-independent). Keeping ids branch-local keeps the
    /// direct-indexed arena vectors dense no matter how long the
    /// exploration runs.
    fn fresh_event(h: &History) -> EventId {
        EventId(h.max_event_id() + 1)
    }

    fn fresh_tx(h: &History) -> TxId {
        TxId(h.max_tx_id() + 1)
    }

    /// Routes the explorer's consistency engines (exploration and output
    /// filter) through a cross-worker [`SharedMemo`], so verdicts decided
    /// by one worker are table lookups for its siblings. Verdicts are pure
    /// functions of `(history, spec)`, so the exploration tree — and every
    /// deterministic report quantity — is unchanged; only `memo_hits` /
    /// `shared_memo_hits` and wall clock move.
    fn attach_shared_memo(&mut self, memo: &Arc<SharedMemo>) {
        self.checker.attach_shared_memo(Arc::clone(memo));
        if let Some(output) = self.output_checker.as_mut() {
            output.attach_shared_memo(Arc::clone(memo));
        }
    }

    /// Processes one node popped from the work-stealing pool: the body of
    /// [`visit`](Explorer::visit), with children pushed onto this worker's
    /// deque (registered before the parent is finished, so the pool's
    /// in-flight count never dips to zero mid-subtree). Children are
    /// pushed in reverse so the LIFO pop order matches the serial visit
    /// order — the first child extends the history the engines just saw.
    ///
    /// After a timeout the node is finished without being counted or
    /// expanded, draining the pool — exactly the serial path, which stops
    /// counting the moment the deadline passes.
    fn process_task(
        &mut self,
        h: OrderedHistory,
        pool: &StealPool<OrderedHistory>,
        worker: usize,
    ) -> Result<(), ExploreError> {
        if self.timed_out() {
            pool.finish_task();
            return Ok(());
        }
        self.report.explore_calls += 1;
        self.report.max_events = self.report.max_events.max(h.order.len());
        let expansion = match self.expand(h) {
            Ok(expansion) => expansion,
            Err(e) => {
                pool.finish_task();
                return Err(e);
            }
        };
        match expansion {
            Expansion::Complete(h) => self.handle_complete(&h),
            Expansion::Children(children) => {
                pool.push_children(worker, children.into_iter().rev());
            }
        }
        pool.finish_task();
        Ok(())
    }

    /// Folds the engines' counters into the report (once, at the end of
    /// this explorer's run).
    fn record_engine_stats(&mut self) {
        let mut stats = self.checker.stats();
        if let Some(output) = &self.output_checker {
            stats.absorb(&output.stats());
            self.report.components = self.report.components.max(output.components());
            self.report.largest_component = self
                .report
                .largest_component
                .max(output.largest_component());
        }
        self.report.engine_checks += stats.checks;
        self.report.engine_memo_hits += stats.memo_hits;
        self.report.engine_stats.absorb(&stats);
    }

    fn timed_out(&mut self) -> bool {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.report.timed_out = true;
                return true;
            }
        }
        false
    }

    /// The `explore` traversal of Algorithm 1, run iteratively over an
    /// explicit worklist of [`Expansion`] children so that the exploration
    /// depth is bounded by memory rather than by thread stack size (the
    /// redundant no-optimality ablation reaches depths that overflow even
    /// half-gigabyte stacks). The visit order is exactly the depth-first
    /// order of the recursive formulation.
    fn explore(&mut self, root: OrderedHistory) -> Result<(), ExploreError> {
        let mut stack: Vec<std::vec::IntoIter<OrderedHistory>> = Vec::new();
        self.visit(root, &mut stack)?;
        while let Some(top) = stack.last_mut() {
            match top.next() {
                Some(child) => self.visit(child, &mut stack)?,
                None => {
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Visits one node of the exploration tree: records it, handles
    /// complete executions, and queues the children of incomplete ones.
    fn visit(
        &mut self,
        h: OrderedHistory,
        stack: &mut Vec<std::vec::IntoIter<OrderedHistory>>,
    ) -> Result<(), ExploreError> {
        if self.timed_out() {
            return Ok(());
        }
        self.report.explore_calls += 1;
        self.report.max_events = self.report.max_events.max(h.order.len());
        match self.expand(h)? {
            Expansion::Complete(h) => self.handle_complete(&h),
            Expansion::Children(children) => stack.push(children.into_iter()),
        }
        Ok(())
    }

    /// Computes the children of a node: the scheduler extensions of
    /// Algorithm 1 interleaved with the `Optimality`-approved re-orderings
    /// of Algorithm 2. Children depend only on `h`, never on sibling
    /// subtrees, which is what allows partitioning them across workers
    /// (used by the breadth-first seeding pass of the parallel mode; the
    /// serial recursion streams the same children instead of materialising
    /// them).
    fn expand(&mut self, mut h: OrderedHistory) -> Result<Expansion, ExploreError> {
        debug_assert_eq!(h.check_invariants(), Ok(()));
        match oracle_next(self.program, &h.history, &mut self.vars)? {
            SchedulerStep::Finished => Ok(Expansion::Complete(Box::new(h))),
            SchedulerStep::Begin {
                session,
                program_index,
            } => {
                let tx = Self::fresh_tx(&h.history);
                let ev = Event::new(Self::fresh_event(&h.history), EventKind::Begin);
                let mut extended = h;
                extended
                    .history
                    .begin_transaction(session, tx, program_index, ev.clone());
                extended.push(ev.id);
                let mut children = Vec::new();
                self.push_with_swaps(extended, &mut children);
                Ok(Expansion::Children(children))
            }
            SchedulerStep::Continue { session, step, .. } => match step {
                TxStep::Read {
                    var,
                    internal_value: None,
                    ..
                } => {
                    let ev = Event::new(Self::fresh_event(&h.history), EventKind::Read(var));
                    let writers = self.valid_writes(&mut h, session, &ev);
                    if writers.is_empty() {
                        self.report.blocked += 1;
                    }
                    let mut children = Vec::new();
                    let n_writers = writers.len();
                    let mut base = Some(h);
                    for (k, writer) in writers.into_iter().enumerate() {
                        // Clone the node for each sibling but move it into
                        // the last one.
                        let mut extended = if k + 1 == n_writers {
                            base.take().expect("base kept for the last writer")
                        } else {
                            base.as_ref()
                                .expect("base kept until the last writer")
                                .clone()
                        };
                        extended.history.append_event(session, ev.clone());
                        extended.push(ev.id);
                        extended.history.set_wr(ev.id, writer);
                        self.push_with_swaps(extended, &mut children);
                    }
                    Ok(Expansion::Children(children))
                }
                other => {
                    let kind = match other {
                        TxStep::Read { var, .. } => EventKind::Read(var),
                        TxStep::Write { var, value } => EventKind::Write(var, value),
                        TxStep::Commit => EventKind::Commit,
                        TxStep::Abort => EventKind::Abort,
                    };
                    let ev = Event::new(Self::fresh_event(&h.history), kind);
                    let mut extended = h;
                    extended.history.append_event(session, ev.clone());
                    extended.push(ev.id);
                    let mut children = Vec::new();
                    self.push_with_swaps(extended, &mut children);
                    Ok(Expansion::Children(children))
                }
            },
        }
    }

    /// Appends an extension and its `exploreSwaps` results (Algorithm 2) to
    /// the children list, preserving the serial visit order (the extension
    /// first, then each approved re-ordering).
    fn push_with_swaps(&mut self, mut extended: OrderedHistory, out: &mut Vec<OrderedHistory>) {
        let mut swaps = Vec::new();
        if !self.timed_out() {
            // All re-orderings share the just-committed target: one
            // causal-ancestors BFS serves every candidate (doomed-set
            // computation, in-place trials and the materialised swaps).
            if let Some((ancestors, reorderings)) = compute_reorderings_and_ancestors(
                &extended,
                Some(&self.footprints),
                &mut self.report.statically_pruned,
            ) {
                for reordering in reorderings {
                    if self.timed_out() {
                        break;
                    }
                    if let Some(swapped) = optimality(
                        &mut extended,
                        reordering.read,
                        reordering.target,
                        &ancestors,
                        self.checker.as_mut(),
                        self.config.full_optimality,
                    ) {
                        swaps.push(swapped);
                    }
                }
            }
        }
        out.push(extended);
        out.extend(swaps);
    }

    /// `ValidWrites(h, e)` (§5.1): the committed transactions writing
    /// `var(e)` such that extending the history with `e` reading from them
    /// keeps it consistent with the exploration level.
    ///
    /// The trial extension mutates `h` in place under a checkpoint instead
    /// of cloning it: the read is appended once, and each candidate's wr
    /// edge is set, checked and explicitly unset, so no candidate's check
    /// ever observes the previous candidate's edge. The rollback restores
    /// `h` exactly (the history order is untouched: trial events are never
    /// pushed onto `h.order`).
    fn valid_writes(
        &mut self,
        h: &mut OrderedHistory,
        session: SessionId,
        ev: &Event,
    ) -> Vec<TxId> {
        let var = ev.var().expect("valid_writes takes a read event");
        let history = &mut h.history;
        let mark = history.checkpoint();
        history.append_event(session, ev.clone());
        let trial = history.prepare_wr_trial(ev.id);
        let mut out = Vec::new();
        for writer in history.committed_writers_of(var) {
            history.set_wr_trial(&trial, writer);
            let consistent = self.checker.check(history);
            history.unset_wr_trial(&trial);
            if consistent {
                out.push(writer);
            }
        }
        history.rollback(mark);
        out
    }

    /// Handles a complete execution: applies the `Valid` output filter,
    /// records statistics and evaluates the user assertion.
    fn handle_complete(&mut self, h: &OrderedHistory) {
        self.report.end_states += 1;
        #[cfg(debug_assertions)]
        if let Err(e) = self.footprints.check_covers_history(&h.history, &self.vars) {
            unreachable!("static footprint soundness violated: {e}");
        }
        let valid = match self.output_checker.as_mut() {
            None => true,
            Some(checker) => checker.check(&h.history),
        };
        if !valid {
            if self.report.first_rejection.is_none() {
                if let Some(checker) = self.output_checker.as_mut() {
                    // Once per run, off the hot path: the boolean verdict
                    // above is already memoised, so this only pays for the
                    // on-demand evidence reconstruction.
                    if let Verdict::Inconsistent(core) = checker.check_witnessed(&h.history) {
                        self.report.first_rejection = Some(core);
                    }
                }
            }
            return;
        }
        self.report.outputs += 1;
        if self.config.track_duplicates {
            let fp = h.history.fingerprint();
            if !self.seen.insert(fp) {
                self.report.duplicate_outputs += 1;
            }
        }
        if self.config.collect_histories {
            self.report.histories.push(h.history.clone());
        }
        if let Some(assertion) = self.assertion {
            if let Ok(envs) = replay_all(self.program, &h.history, &mut self.vars) {
                let ctx = AssertionCtx {
                    program: self.program,
                    history: &h.history,
                    vars: &self.vars,
                    envs: &envs,
                };
                if !assertion(&ctx) {
                    self.report.assertion_violations += 1;
                    if self.report.violating_history.is_none() {
                        self.report.violating_history = Some(h.history.clone());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_history::IsolationLevel;
    use txdpor_program::dsl::*;

    /// Fig. 10a: a reader of x and y against a writer of x and y.
    fn fig10_program() -> Program {
        program(vec![
            session(vec![tx(
                "reader",
                vec![read("a", g("x")), read("b", g("y"))],
            )]),
            session(vec![tx(
                "writer",
                vec![write(g("x"), cint(2)), write(g("y"), cint(2))],
            )]),
        ])
    }

    /// Fig. 12a: two readers of x and two writers of x, each in its own
    /// session.
    fn fig12_program() -> Program {
        program(vec![
            session(vec![tx("w2", vec![write(g("x"), cint(2))])]),
            session(vec![tx("r1", vec![read("a", g("x"))])]),
            session(vec![tx("r2", vec![read("b", g("x"))])]),
            session(vec![tx("w4", vec![write(g("x"), cint(4))])]),
        ])
    }

    /// Fig. 13a: a reader of x, a reader of y, a writer of y, a writer of x.
    fn fig13_program() -> Program {
        program(vec![
            session(vec![tx("rx", vec![read("a", g("x"))])]),
            session(vec![tx("ry", vec![read("b", g("y"))])]),
            session(vec![tx("wy", vec![write(g("y"), cint(3))])]),
            session(vec![tx("wx", vec![write(g("x"), cint(4))])]),
        ])
    }

    /// Fig. 8a / Fig. 11a style program with an abort guard.
    fn abort_program() -> Program {
        program(vec![
            session(vec![
                tx(
                    "guarded",
                    vec![
                        read("a", g("x")),
                        iff(eq(local("a"), cint(0)), vec![abort()]),
                        write(g("y"), cint(1)),
                    ],
                ),
                tx("reader", vec![read("b", g("x"))]),
            ]),
            session(vec![
                tx("wy", vec![write(g("y"), cint(3))]),
                tx("wx", vec![write(g("x"), cint(4))]),
            ]),
        ])
    }

    fn run(p: &Program, config: ExploreConfig) -> ExplorationReport {
        explore(p, config.tracking_duplicates().collecting_histories()).unwrap()
    }

    #[test]
    fn fig10_under_cc_enumerates_all_read_from_combinations() {
        // Under CC the reader can observe (x,y) ∈ {(0,0), (0,2)?, (2,0)?, (2,2)}.
        // Reading x=0, y=2 is allowed by CC? The writer writes x then y, so
        // reading y from the writer and x from init violates RA (fractured
        // read)... but the reader reads x first. Reading x=0,y=2 means x
        // from init and y from writer: RA violation but the premise needs
        // (writer, reader) ∈ so ∪ wr which holds via wr(y), and writer
        // writes x, so x must read from a transaction after the writer:
        // contradiction — not CC. Reading x=2, y=0 violates RC similarly?
        // The read of y comes po-after the read of x which read from the
        // writer, so RC forces writer < init in co: inconsistent. Hence
        // exactly 3 histories: (0,0), (2,2), and... let us just check the
        // count against the DFS baseline in the integration tests; here we
        // check soundness, optimality and strong optimality.
        let p = fig10_program();
        let report = run(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        );
        assert!(report.outputs > 0);
        assert_eq!(report.duplicate_outputs, 0, "optimality violated");
        assert_eq!(report.blocked, 0, "strong optimality violated");
        assert_eq!(report.end_states, report.outputs);
        for h in &report.histories {
            assert!(
                IsolationLevel::CausalConsistency.satisfies(h),
                "unsound output"
            );
        }
    }

    #[test]
    fn fig12_optimality_no_duplicates() {
        let p = fig12_program();
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic,
            IsolationLevel::CausalConsistency,
        ] {
            let report = run(&p, ExploreConfig::explore_ce(level));
            assert_eq!(report.duplicate_outputs, 0, "duplicates under {level}");
            assert_eq!(report.blocked, 0, "blocked exploration under {level}");
            // Two independent writers and two independent readers of x:
            // each reader independently reads one of init/w2/w4 = 9 histories.
            assert_eq!(report.outputs, 9, "wrong count under {level}");
        }
    }

    #[test]
    fn fig13_optimality_no_duplicates() {
        let p = fig13_program();
        let report = run(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        );
        assert_eq!(report.duplicate_outputs, 0);
        assert_eq!(report.blocked, 0);
        // Reader of x sees init or wx; reader of y sees init or wy: 4.
        assert_eq!(report.outputs, 4);
        // The x-transactions and y-transactions are statically
        // independent, so every commit skips its cross-pair reordering
        // candidates without scanning their reads.
        assert!(
            report.statically_pruned > 0,
            "disjoint-variable program must exercise the static pruner"
        );
    }

    #[test]
    fn decomposed_output_filter_reports_components() {
        // Two disjoint lost-update pairs: sessions 0–1 race on x,
        // sessions 2–3 race on y. Complete histories split into two
        // communication-graph components of two transactions each, which
        // the `explore-ce*` output filter checks independently.
        let incr = |name: &str| {
            tx(
                "incr",
                vec![read("a", g(name)), write(g(name), add(local("a"), cint(1)))],
            )
        };
        let p = program(vec![
            session(vec![incr("x")]),
            session(vec![incr("x")]),
            session(vec![incr("y")]),
            session(vec![incr("y")]),
        ]);
        let report = run(
            &p,
            ExploreConfig::explore_ce_star(
                IsolationLevel::CausalConsistency,
                IsolationLevel::Serializability,
            ),
        );
        assert_eq!(report.components, 2, "two independent pairs");
        assert_eq!(report.largest_component, 2, "two transactions each");
        assert!(report.statically_pruned > 0);
        // The decomposed filter must agree with the product of the
        // one-pair counts: each pair alone has 2 serializable histories
        // out of 3 CC ones.
        assert_eq!(report.end_states, 9);
        assert_eq!(report.outputs, 4);
        for h in &report.histories {
            assert!(IsolationLevel::Serializability.satisfies(h));
        }
    }

    #[test]
    fn disabling_optimality_keeps_the_same_set_of_histories() {
        let p = fig12_program();
        let with = run(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        );
        let without = run(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).without_optimality(),
        );
        use std::collections::BTreeSet;
        let a: BTreeSet<_> = with.histories.iter().map(|h| h.fingerprint()).collect();
        let b: BTreeSet<_> = without.histories.iter().map(|h| h.fingerprint()).collect();
        assert_eq!(a, b, "ablation must not change the set of histories");
        assert!(
            without.outputs >= with.outputs,
            "ablation cannot output fewer histories"
        );
        assert!(
            without.duplicate_outputs > 0,
            "Fig. 12 forces redundancy without the Optimality check"
        );
    }

    #[test]
    fn aborting_transactions_are_handled() {
        let p = abort_program();
        let report = run(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        );
        assert_eq!(report.duplicate_outputs, 0);
        assert_eq!(report.blocked, 0);
        assert!(report.outputs > 0);
        // Some histories must contain an aborted transaction (x read 0) and
        // some a committed write of y=1 (x read 4).
        let mut aborted = 0;
        let mut committed_guard = 0;
        for h in &report.histories {
            for t in h.transactions() {
                if t.is_aborted() {
                    aborted += 1;
                }
            }
            let y = report.vars.get("y").unwrap();
            if h.writers_of(y).len() > 2 {
                committed_guard += 1;
            }
        }
        assert!(aborted > 0, "no aborted execution explored");
        assert!(committed_guard > 0, "no execution where the guard commits");
    }

    /// The classic long-fork program: two blind writers and two readers
    /// observing the writes in opposite orders.
    fn long_fork_program() -> Program {
        program(vec![
            session(vec![tx("wx", vec![write(g("x"), cint(1))])]),
            session(vec![tx("wy", vec![write(g("y"), cint(1))])]),
            session(vec![tx("r1", vec![read("a", g("x")), read("b", g("y"))])]),
            session(vec![tx("r2", vec![read("c", g("y")), read("d", g("x"))])]),
        ])
    }

    #[test]
    fn explore_ce_star_filters_outputs() {
        let p = long_fork_program();
        let cc = run(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        );
        let star = run(
            &p,
            ExploreConfig::explore_ce_star(
                IsolationLevel::CausalConsistency,
                IsolationLevel::Serializability,
            ),
        );
        // Same exploration, filtered outputs.
        assert_eq!(star.end_states, cc.end_states);
        assert!(star.outputs <= cc.outputs);
        assert_eq!(star.duplicate_outputs, 0);
        for h in &star.histories {
            assert!(IsolationLevel::Serializability.satisfies(h));
        }
        // Each reader independently observes one of {init, writer} for x and
        // y: 16 CC histories. Serializability forbids the two long-fork
        // observations (the readers seeing the writes in opposite orders).
        assert_eq!(cc.outputs, 16);
        assert_eq!(star.outputs, 14);
        assert!(star.outputs < cc.outputs);
        // The first filtered end state comes with its violation core: a
        // closed cycle whose forced edges carry SER axiom instances.
        let core = star
            .first_rejection
            .as_ref()
            .expect("a filtered run reports its first rejection");
        assert!(!core.cycle.is_empty());
        for (k, e) in core.cycle.iter().enumerate() {
            let next = &core.cycle[(k + 1) % core.cycle.len()];
            assert_eq!(e.to, next.from, "rejection core not a closed cycle");
        }
        assert!(
            cc.first_rejection.is_none(),
            "unfiltered exploration rejects nothing"
        );
    }

    #[test]
    fn mixed_target_spec_filters_exactly_the_spec_satisfying_histories() {
        use txdpor_history::LevelSpec;
        // Long fork with the two readers promoted to SER while the blind
        // writers stay CC. The exploration (base CC) must output
        // precisely the CC histories satisfying the mixed spec.
        let p = long_fork_program();
        let cc = run(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        );
        let spec = LevelSpec::uniform(IsolationLevel::CausalConsistency)
            .with_override(2, 0, IsolationLevel::Serializability)
            .with_override(3, 0, IsolationLevel::Serializability);
        let mixed = run(
            &p,
            ExploreConfig::explore_ce_star_spec(
                LevelSpec::uniform(IsolationLevel::CausalConsistency),
                spec.clone(),
            ),
        );
        assert_eq!(mixed.end_states, cc.end_states);
        assert_eq!(mixed.duplicate_outputs, 0);
        let expected = cc.histories.iter().filter(|h| spec.satisfies(h)).count() as u64;
        assert_eq!(mixed.outputs, expected, "mixed filter disagrees");
        for h in &mixed.histories {
            assert!(spec.satisfies(h), "unsound mixed output");
        }
        // The axioms constrain each *reader* at its own level, so the two
        // SER readers rule out exactly the two opposite-order long-fork
        // observations — and since the blind writers have no reads, their
        // CC assignment changes nothing vs uniform SER.
        let ser = run(
            &p,
            ExploreConfig::explore_ce_star(
                IsolationLevel::CausalConsistency,
                IsolationLevel::Serializability,
            ),
        );
        assert_eq!(cc.outputs, 16);
        assert_eq!(mixed.outputs, 14);
        assert_eq!(mixed.outputs, ser.outputs);
        // Demoting one reader back to CC frees the other's observation:
        // a single SER reader filters nothing on this program.
        let one_ser = LevelSpec::uniform(IsolationLevel::CausalConsistency).with_override(
            2,
            0,
            IsolationLevel::Serializability,
        );
        let loose = run(
            &p,
            ExploreConfig::explore_ce_star_spec(
                LevelSpec::uniform(IsolationLevel::CausalConsistency),
                one_ser.clone(),
            ),
        );
        let expected = cc.histories.iter().filter(|h| one_ser.satisfies(h)).count() as u64;
        assert_eq!(loose.outputs, expected);
        assert_eq!(loose.outputs, cc.outputs);
    }

    #[test]
    fn mixed_weak_base_spec_is_explorable() {
        use std::collections::BTreeSet;
        use txdpor_history::LevelSpec;
        // Exploring under a *mixed weak* base (one RC reader in a CC
        // world) is legal — all levels causally extensible — and
        // enumerates a superset of the uniform CC histories, which a CC
        // output filter then recovers exactly.
        let p = long_fork_program();
        let base = LevelSpec::uniform(IsolationLevel::CausalConsistency)
            .with_override(3, 0, IsolationLevel::ReadCommitted)
            .with_override(2, 0, IsolationLevel::ReadCommitted);
        let target = LevelSpec::uniform(IsolationLevel::CausalConsistency);
        let mixed_base = run(
            &p,
            ExploreConfig::explore_ce_star_spec(base, target.clone()),
        );
        let cc = run(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
        );
        assert_eq!(mixed_base.duplicate_outputs, 0, "optimality violated");
        assert_eq!(mixed_base.blocked, 0, "strong optimality violated");
        let a: BTreeSet<_> = mixed_base
            .histories
            .iter()
            .map(|h| h.fingerprint())
            .collect();
        let b: BTreeSet<_> = cc.histories.iter().map(|h| h.fingerprint()).collect();
        assert_eq!(a, b, "filtered mixed-weak base must recover the CC set");
    }

    #[test]
    fn timeout_is_respected() {
        let p = fig12_program();
        let config = ExploreConfig::explore_ce(IsolationLevel::CausalConsistency)
            .with_timeout(std::time::Duration::ZERO);
        let report = explore(&p, config).unwrap();
        assert!(report.timed_out);
        assert_eq!(report.outputs, 0);
    }

    #[test]
    fn assertion_violations_are_detected() {
        // Lost-update program: two increments of x; under CC the final
        // counter can miss an increment.
        let incr = || {
            tx(
                "incr",
                vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
            )
        };
        let p = program(vec![session(vec![incr()]), session(vec![incr()])]);
        let assertion = |ctx: &AssertionCtx<'_>| {
            // Serial executions end with some transaction writing 2.
            ctx.committed_values_of("x")
                .contains(&txdpor_history::Value::Int(2))
        };
        let report = explore_with_assertion(
            &p,
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency),
            Some(&assertion),
        )
        .unwrap();
        assert!(
            report.assertion_violations > 0,
            "lost update not found under CC"
        );
        assert!(report.violating_history.is_some());
        // Under serializability the assertion holds in every history.
        let report = explore_with_assertion(
            &p,
            ExploreConfig::explore_ce_star(
                IsolationLevel::CausalConsistency,
                IsolationLevel::Serializability,
            ),
            Some(&assertion),
        )
        .unwrap();
        assert_eq!(report.assertion_violations, 0);
    }

    #[test]
    fn error_display() {
        let e = ExploreError::Semantics(SemanticsError::MultiplePending);
        assert!(e.to_string().contains("semantics error"));
    }

    /// Regression test for the pool's panic-safety protocol: an assertion
    /// that panics on a complete history kills the worker evaluating it.
    /// The panic must drain the task's in-flight slot and poison the pool
    /// (siblings exit instead of spinning in `Backoff` on a count that
    /// can never reach zero) and then propagate through the scope join —
    /// so this test completes instead of hanging, and the surviving
    /// workers' results are simply discarded with the run.
    #[test]
    fn panicking_worker_task_propagates_without_hanging() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // Four sessions racing on x: the branching at the reads builds a
        // frontier wider than the seeding target (2 workers x 8 tasks)
        // well before any branch completes, so the panic fires inside a
        // worker thread, not in the seeding pass.
        let p = program(
            (0..4)
                .map(|k| {
                    session(vec![tx(
                        "bump",
                        vec![read("a", g("x")), write(g("x"), cint(k as i64))],
                    )])
                })
                .collect(),
        );
        let assertion: &crate::assertion::AssertionFn = &|_ctx| panic!("deliberate test panic");
        let config = ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).with_workers(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            explore_with_assertion(&p, config, Some(assertion))
        }));
        assert!(result.is_err(), "the worker panic must propagate");
    }

    /// Regression test for the `ValidWrites` trial protocol: the candidate
    /// set on a history with two committed writers is pinned, every
    /// verdict agrees with a from-scratch check on an independent history
    /// clone (so no candidate's check can have observed a stale wr edge
    /// left by the previous candidate), and the trial leaves the node's
    /// history bit-identical.
    #[test]
    fn valid_writes_pins_two_writer_candidate_set() {
        use txdpor_history::{engine_for, History, IsolationLevel, Value};

        let x = Var(0);
        let mut history = History::new([]);
        let mut order = Vec::new();
        let mut id = 0u32;
        let mut fresh = || {
            id += 1;
            EventId(id)
        };
        // Session 0: t1 = write(x,1); session 1: t2 = write(x,2); both
        // committed. Session 2: t3 pending, about to read x.
        for (s, (t, v)) in [(TxId(1), 1i64), (TxId(2), 2i64)].into_iter().enumerate() {
            let b = fresh();
            history.begin_transaction(SessionId(s as u32), t, 0, Event::new(b, EventKind::Begin));
            order.push(b);
            let w = fresh();
            history.append_event(
                SessionId(s as u32),
                Event::new(w, EventKind::Write(x, Value::Int(v))),
            );
            order.push(w);
            let c = fresh();
            history.append_event(SessionId(s as u32), Event::new(c, EventKind::Commit));
            order.push(c);
        }
        let b = fresh();
        history.begin_transaction(SessionId(2), TxId(3), 0, Event::new(b, EventKind::Begin));
        order.push(b);
        let mut h = OrderedHistory { history, order };
        h.check_invariants().unwrap();
        let snapshot = h.clone();

        let p = fig12_program(); // any program: valid_writes only uses the checker
        let config = ExploreConfig::explore_ce(IsolationLevel::CausalConsistency);
        let mut explorer = Explorer::new(&p, &config, None);
        let ev = Event::new(EventId(100), EventKind::Read(x));
        let writers = explorer.valid_writes(&mut h, SessionId(2), &ev);

        // The candidate set is exactly {init, t1, t2} under CC.
        assert_eq!(writers, vec![TxId::INIT, TxId(1), TxId(2)]);
        // The trial rolled everything back.
        assert_eq!(h, snapshot);
        assert_eq!(h.history.live_hash(), snapshot.history.live_hash());
        // Cross-validate every candidate on an independent clone with a
        // fresh engine: identical verdicts, trial order irrelevant.
        for writer in &writers {
            let mut trial = snapshot.history.clone();
            trial.append_event(SessionId(2), ev.clone());
            trial.set_wr(ev.id, *writer);
            let mut engine = engine_for(IsolationLevel::CausalConsistency);
            assert!(
                engine.check(&trial),
                "candidate {writer} validated by the journal protocol but \
                 rejected from scratch"
            );
        }
    }
}
