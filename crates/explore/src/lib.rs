//! Swapping-based dynamic partial order reduction for transactional
//! programs under weak isolation levels.
//!
//! This crate implements the model checking algorithms of the PLDI 2023
//! paper *"Dynamic Partial Order Reduction for Checking Correctness against
//! Transaction Isolation Levels"* (Bouajjani, Enea, Román-Calvo):
//!
//! * [`explore`] with [`ExploreConfig::explore_ce`] — the `explore-ce`
//!   algorithm of §5, sound, complete, strongly optimal and polynomial
//!   space for prefix-closed, causally-extensible isolation levels
//!   (Read Committed, Read Atomic, Causal Consistency);
//! * [`explore`] with [`ExploreConfig::explore_ce_star`] — the
//!   `explore-ce*(I0, I)` algorithm of §6 for Snapshot Isolation and
//!   Serializability, which explores under a weaker level and filters
//!   outputs;
//! * [`dfs_explore`] — the `DFS(I)` baseline without partial order
//!   reduction used in the paper's evaluation (§7.3).
//!
//! # Example
//!
//! Count the weak behaviours of a two-session lost-update program:
//!
//! ```
//! use txdpor_explore::{explore, ExploreConfig};
//! use txdpor_history::IsolationLevel;
//! use txdpor_program::dsl::*;
//!
//! let increment = || tx(
//!     "incr",
//!     vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
//! );
//! let p = program(vec![session(vec![increment()]), session(vec![increment()])]);
//!
//! let cc = explore(&p, ExploreConfig::explore_ce(IsolationLevel::CausalConsistency))?;
//! let ser = explore(&p, ExploreConfig::explore_ce_star(
//!     IsolationLevel::CausalConsistency,
//!     IsolationLevel::Serializability,
//! ))?;
//! // Causal consistency admits the lost-update anomaly, serializability does not.
//! assert!(cc.outputs > ser.outputs);
//! # Ok::<(), txdpor_explore::ExploreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assertion;
pub mod config;
pub mod dfs;
pub mod explorer;
pub mod optimality;
pub mod ordered;
pub mod steal;
pub mod swap;

pub use assertion::{AssertionCtx, AssertionFn};
pub use config::{ExplorationReport, ExploreConfig};
pub use dfs::{dfs_explore, DfsConfig};
pub use explorer::{explore, explore_with_assertion, ExploreError};
pub use ordered::OrderedHistory;
pub use steal::StealPool;
pub use swap::{compute_reorderings, swap, Reordering};
