//! User-defined assertions evaluated on every output history.
//!
//! The paper's tool checks user-defined assertions over the systematically
//! enumerated executions (§8, comparison with MonkeyDB). An assertion here
//! is a predicate over an [`AssertionCtx`] giving access to the output
//! history, the program, and the final local-variable environment of each
//! transaction (recovered by replay).

use txdpor_history::{History, TxId, Value, Var, VarTable};
use txdpor_program::{Env, Program};

/// The context an assertion is evaluated in.
#[derive(Debug)]
pub struct AssertionCtx<'a> {
    /// The program being checked.
    pub program: &'a Program,
    /// The complete output history.
    pub history: &'a History,
    /// Variable-name interning table.
    pub vars: &'a VarTable,
    /// Final local environment of every transaction of the history.
    pub envs: &'a [(TxId, Env)],
}

/// The type of user assertions: `true` means the history is acceptable.
/// Assertions must be `Sync` so that parallel explorations can evaluate
/// them from several workers at once.
pub type AssertionFn = dyn Fn(&AssertionCtx<'_>) -> bool + Sync;

impl AssertionCtx<'_> {
    /// The interned variable for a global name, if it was ever accessed.
    pub fn var(&self, name: &str) -> Option<Var> {
        self.vars.get(name)
    }

    /// Iterates over the committed transactions whose program definition has
    /// the given name, together with their final local environments.
    pub fn committed_named<'b>(
        &'b self,
        name: &'b str,
    ) -> impl Iterator<Item = (TxId, &'b Env)> + 'b {
        self.envs.iter().filter_map(move |(t, env)| {
            let log = self.history.get_tx(*t)?;
            if !log.is_committed() {
                return None;
            }
            let def = self
                .program
                .transaction(log.session.0 as usize, log.program_index)?;
            (def.name == name).then_some((*t, env))
        })
    }

    /// Number of committed transactions with the given definition name that
    /// performed a visible write to the given global variable.
    pub fn committed_writers_named(&self, name: &str, var_name: &str) -> usize {
        let Some(var) = self.var(var_name) else {
            return 0;
        };
        self.committed_named(name)
            .filter(|(t, _)| self.history.writes_var(*t, var))
            .count()
    }

    /// The values written to a variable by committed transactions (visible
    /// writes), useful for aggregate invariants.
    pub fn committed_values_of(&self, var_name: &str) -> Vec<Value> {
        let Some(var) = self.var(var_name) else {
            return Vec::new();
        };
        self.history
            .committed_txs()
            .into_iter()
            .filter_map(|t| self.history.visible_write_value(t, var))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_program::dsl::*;
    use txdpor_program::{execute_serial, replay_all};

    #[test]
    fn context_helpers() {
        let p = program(vec![
            session(vec![tx(
                "incr",
                vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
            )]),
            session(vec![tx("observe", vec![read("b", g("x"))])]),
        ]);
        let (h, vars) = execute_serial(&p).unwrap();
        let mut vt = vars.clone();
        let envs = replay_all(&p, &h, &mut vt).unwrap();
        let ctx = AssertionCtx {
            program: &p,
            history: &h,
            vars: &vt,
            envs: &envs,
        };
        assert!(ctx.var("x").is_some());
        assert!(ctx.var("nonexistent").is_none());
        assert_eq!(ctx.committed_named("incr").count(), 1);
        assert_eq!(ctx.committed_named("observe").count(), 1);
        assert_eq!(ctx.committed_named("unknown").count(), 0);
        assert_eq!(ctx.committed_writers_named("incr", "x"), 1);
        assert_eq!(ctx.committed_writers_named("observe", "x"), 0);
        assert_eq!(ctx.committed_writers_named("incr", "missing"), 0);
        assert_eq!(ctx.committed_values_of("x"), vec![Value::Int(1)]);
        assert!(ctx.committed_values_of("missing").is_empty());
    }
}
