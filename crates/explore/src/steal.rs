//! Work-stealing scheduling for the parallel exploration.
//!
//! The exploration tree is embarrassingly parallel — children of a node
//! depend only on that node — but subtree sizes are wildly skewed: one
//! heavy root subtree can hold almost all of the work, so a static
//! partition of the root frontier starves every worker but one. The
//! [`StealPool`] fixes the imbalance dynamically:
//!
//! * **Per-worker LIFO deques.** Each worker owns a `Mutex`-guarded
//!   [`VecDeque`] of exploration nodes. The owner pushes children at the
//!   *back* and pops from the *back*, so it traverses its subtree
//!   depth-first — exactly the serial visit order, which keeps the
//!   incremental consistency engines journal-warm (each popped child
//!   extends the history the engine just saw).
//! * **Thieves steal shallow.** The *front* of a deque holds the oldest,
//!   shallowest nodes — the roots of the largest untouched subtrees. An
//!   idle worker steals half of a victim's deque from the front, so whole
//!   subtrees migrate in one lock acquisition and the victim keeps the
//!   deep nodes its engine is warm for.
//! * **Termination detection.** A task is *in flight* from the moment it
//!   is seeded or pushed until its owner finishes processing it; children
//!   are counted *before* their parent is finished, so the atomic
//!   in-flight counter never touches zero while any work exists. A worker
//!   that finds nothing to pop or steal and sees the counter at zero can
//!   safely exit; until then it backs off (a few spin-yields, then short
//!   sleeps).
//!
//! The pool schedules; it never inspects nodes. Since every node of the
//! tree is processed by exactly one worker no matter how tasks migrate,
//! all order-independent exploration quantities (counts, fingerprint
//! sets) are bit-identical to a serial run.
//!
//! * **Panic safety.** The in-flight counter only reaches zero if every
//!   popped task is [`finish_task`]ed — a worker that panics mid-task
//!   would leave the count permanently positive and its siblings spinning
//!   in [`Backoff`] forever. A worker that catches a task panic must
//!   therefore call [`finish_task`] for the doomed task and [`poison`]
//!   the pool before re-raising; siblings observe [`is_poisoned`] and
//!   exit instead of waiting for a count that can no longer drain.
//!
//! [`finish_task`]: StealPool::finish_task
//! [`poison`]: StealPool::poison
//! [`is_poisoned`]: StealPool::is_poisoned

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Work-stealing pool of exploration tasks; see the module documentation.
#[derive(Debug)]
pub struct StealPool<T> {
    /// One deque per worker: owner pushes/pops at the back, thieves take
    /// from the front.
    queues: Vec<Mutex<VecDeque<T>>>,
    /// Tasks seeded or pushed but not yet finished. Zero means the
    /// exploration is complete.
    in_flight: AtomicUsize,
    /// Total tasks migrated by steals.
    steals: AtomicU64,
    /// Set when a worker died mid-task (see the module documentation's
    /// panic-safety contract); tells the surviving workers to stop.
    poisoned: AtomicBool,
}

impl<T> StealPool<T> {
    /// Creates a pool with one deque per worker.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a steal pool needs at least one worker");
        StealPool {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            in_flight: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Distributes the initial frontier round-robin across the deques (the
    /// seeding pass is only the initial distribution — stealing rebalances
    /// from there) and starts the in-flight accounting.
    pub fn seed<I: IntoIterator<Item = T>>(&self, tasks: I) {
        let mut count = 0usize;
        for (k, task) in tasks.into_iter().enumerate() {
            self.queues[k % self.queues.len()]
                .lock()
                .expect("steal deque lock")
                .push_back(task);
            count += 1;
        }
        self.in_flight.fetch_add(count, Ordering::SeqCst);
    }

    /// Pops the deepest node of worker `w`'s own deque (LIFO — the child
    /// pushed last, extending the history the worker's engine just saw).
    pub fn pop_local(&self, w: usize) -> Option<T> {
        self.queues[w].lock().expect("steal deque lock").pop_back()
    }

    /// Registers and enqueues the children of a node worker `w` just
    /// expanded. Must be called *before* [`finish_task`] on the parent:
    /// the children are added to the in-flight count first, so the count
    /// can never reach zero while descendants remain.
    ///
    /// [`finish_task`]: StealPool::finish_task
    pub fn push_children<I: IntoIterator<Item = T>>(&self, w: usize, children: I) {
        let mut queue = self.queues[w].lock().expect("steal deque lock");
        let before = queue.len();
        queue.extend(children);
        self.in_flight
            .fetch_add(queue.len() - before, Ordering::SeqCst);
    }

    /// Marks one popped task as fully processed (its children, if any,
    /// were already registered via [`push_children`]).
    ///
    /// [`push_children`]: StealPool::push_children
    pub fn finish_task(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Attempts to steal work for worker `w`: scans the other deques
    /// round-robin from `w + 1` and moves the shallower half (rounded up)
    /// of the first non-empty victim's deque — taken from the *front*,
    /// i.e. the roots of the victim's largest untouched subtrees — onto
    /// `w`'s own deque. Returns the number of tasks migrated (zero when
    /// every other deque was empty). In-flight counts are unaffected:
    /// migration neither creates nor finishes tasks.
    pub fn steal_into(&self, w: usize) -> usize {
        let n = self.queues.len();
        for k in 1..n {
            let victim = (w + k) % n;
            let stolen: Vec<T> = {
                let mut queue = self.queues[victim].lock().expect("steal deque lock");
                let take = queue.len().div_ceil(2);
                queue.drain(..take).collect()
            };
            if stolen.is_empty() {
                continue;
            }
            let count = stolen.len();
            // Keep the stolen batch's order: its shallowest node ends up
            // at the thief's front, stealable onward; the thief resumes
            // from the batch's deepest node.
            self.queues[w]
                .lock()
                .expect("steal deque lock")
                .extend(stolen);
            self.steals.fetch_add(count as u64, Ordering::Relaxed);
            return count;
        }
        0
    }

    /// Whether every seeded or pushed task has been finished. Only
    /// meaningful as an exit check after [`pop_local`] and
    /// [`steal_into`] both came up empty: tasks in flight elsewhere may
    /// still spawn children.
    ///
    /// [`pop_local`]: StealPool::pop_local
    /// [`steal_into`]: StealPool::steal_into
    pub fn is_done(&self) -> bool {
        self.in_flight.load(Ordering::SeqCst) == 0
    }

    /// Total number of tasks migrated by steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Marks the pool as dead after a worker panicked mid-task. The
    /// panicking worker must also [`finish_task`](StealPool::finish_task)
    /// the task it was processing (its children were registered before the
    /// panic or not at all, and it will never reach the normal
    /// `finish_task` call), then re-raise so the panic propagates through
    /// the join.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether a worker died mid-task. Surviving workers check this at the
    /// top of their loop and exit instead of backing off: with a task lost
    /// to a panic, the in-flight count may never reach zero again.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }
}

/// Backoff policy for a worker that found nothing to pop or steal: spin
/// with [`std::thread::yield_now`] for the first rounds, then sleep in
/// short slices so a long-idle thief wakes promptly when a victim finally
/// queues work.
#[derive(Debug, Default)]
pub struct Backoff {
    rounds: u32,
}

impl Backoff {
    /// Rounds of `yield_now` before the backoff switches to sleeping.
    const SPIN_ROUNDS: u32 = 64;
    /// Sleep slice once spinning has not paid off.
    const SLEEP: std::time::Duration = std::time::Duration::from_micros(50);

    /// Waits one round (yield or short sleep).
    pub fn idle(&mut self) {
        if self.rounds < Self::SPIN_ROUNDS {
            self.rounds += 1;
            std::thread::yield_now();
        } else {
            std::thread::sleep(Self::SLEEP);
        }
    }

    /// Resets the policy after useful work was found.
    pub fn reset(&mut self) {
        self.rounds = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo_thieves_steal_the_front_half() {
        let pool: StealPool<u32> = StealPool::new(2);
        pool.seed([]); // empty seed is fine
        pool.push_children(0, [1, 2, 3, 4, 5]);
        // Owner resumes from the deepest (last-pushed) node.
        assert_eq!(pool.pop_local(0), Some(5));
        // Thief takes the shallower half — ceil(4/2) = 2 from the front —
        // and resumes from the deepest node of the stolen batch.
        assert_eq!(pool.steal_into(1), 2);
        assert_eq!(pool.pop_local(1), Some(2));
        assert_eq!(pool.pop_local(1), Some(1));
        assert_eq!(pool.pop_local(1), None);
        // The victim keeps its deep nodes.
        assert_eq!(pool.pop_local(0), Some(4));
        assert_eq!(pool.pop_local(0), Some(3));
        assert_eq!(pool.pop_local(0), None);
        assert_eq!(pool.steals(), 2);
    }

    #[test]
    fn seeding_distributes_round_robin() {
        let pool: StealPool<u32> = StealPool::new(2);
        pool.seed([10, 11, 12]);
        assert_eq!(pool.pop_local(0), Some(12));
        assert_eq!(pool.pop_local(0), Some(10));
        assert_eq!(pool.pop_local(1), Some(11));
        assert!(!pool.is_done(), "seeded tasks are in flight until finished");
        for _ in 0..3 {
            pool.finish_task();
        }
        assert!(pool.is_done());
    }

    #[test]
    fn single_task_is_stolen_whole() {
        let pool: StealPool<u32> = StealPool::new(3);
        pool.seed([7]);
        assert_eq!(pool.steal_into(2), 1, "ceil(1/2) = 1: lone tasks move");
        assert_eq!(pool.pop_local(2), Some(7));
        assert_eq!(pool.steal_into(2), 0, "nothing left anywhere");
    }

    #[test]
    fn children_keep_the_pool_in_flight_until_finished() {
        // The parent's children are registered before the parent is
        // finished, so the in-flight count never dips to zero mid-subtree.
        let pool: StealPool<u32> = StealPool::new(1);
        pool.seed([0]);
        let parent = pool.pop_local(0).unwrap();
        pool.push_children(0, [parent + 1, parent + 2]);
        pool.finish_task();
        assert!(!pool.is_done(), "children still queued");
        while let Some(_child) = pool.pop_local(0) {
            pool.finish_task();
        }
        assert!(pool.is_done());
    }

    #[test]
    fn concurrent_workers_drain_a_synthetic_tree_exactly_once() {
        use std::sync::atomic::AtomicU64;
        // Each task is a (depth, id) pair spawning two children up to a
        // fixed depth; every worker counts the nodes it processes. The
        // total must equal the tree size exactly — no node lost, none
        // processed twice — regardless of how tasks migrate.
        const DEPTH: u32 = 10;
        let workers = 4;
        let pool: StealPool<(u32, u64)> = StealPool::new(workers);
        pool.seed([(0u32, 0u64)]);
        let processed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let (pool, processed) = (&pool, &processed);
                scope.spawn(move || {
                    let mut backoff = Backoff::default();
                    loop {
                        if let Some((depth, id)) = pool.pop_local(w) {
                            backoff.reset();
                            processed.fetch_add(1, Ordering::Relaxed);
                            if depth < DEPTH {
                                pool.push_children(
                                    w,
                                    [(depth + 1, id * 2 + 1), (depth + 1, id * 2 + 2)],
                                );
                            }
                            pool.finish_task();
                            continue;
                        }
                        if pool.steal_into(w) > 0 {
                            backoff.reset();
                            continue;
                        }
                        if pool.is_done() {
                            break;
                        }
                        backoff.idle();
                    }
                });
            }
        });
        assert_eq!(processed.load(Ordering::Relaxed), 2u64.pow(DEPTH + 1) - 1);
        assert!(pool.is_done());
        // Whether steals happened depends on the machine's real
        // parallelism (on one core a single worker can drain the whole
        // tree before the others run), so only the exactly-once total is
        // asserted.
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _: StealPool<u32> = StealPool::new(0);
    }

    #[test]
    fn panicking_worker_poisons_the_pool_instead_of_hanging_siblings() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::AtomicU64;
        // Same synthetic tree as the exactly-once test, but one worker
        // panics on a specific node. Without the poisoning protocol the
        // panicking worker would never finish its task and every sibling
        // would spin on `is_done()` forever; with it, the test completes,
        // the siblings' partial counts stay coherent (every *finished*
        // task was processed exactly once) and the panic payload is
        // re-raised through the scope join.
        const DEPTH: u32 = 10;
        let workers = 4;
        let pool: StealPool<(u32, u64)> = StealPool::new(workers);
        pool.seed([(0u32, 0u64)]);
        let processed = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let (pool, processed) = (&pool, &processed);
                    scope.spawn(move || {
                        let mut backoff = Backoff::default();
                        loop {
                            if pool.is_poisoned() {
                                break;
                            }
                            if let Some((depth, id)) = pool.pop_local(w) {
                                backoff.reset();
                                let task = catch_unwind(AssertUnwindSafe(|| {
                                    // The doomed node: deep enough that
                                    // several siblings are already busy.
                                    assert!(
                                        !(depth == 5 && id == 2u64.pow(5) - 1),
                                        "deliberate test panic"
                                    );
                                    processed.fetch_add(1, Ordering::Relaxed);
                                    if depth < DEPTH {
                                        pool.push_children(
                                            w,
                                            [(depth + 1, id * 2 + 1), (depth + 1, id * 2 + 2)],
                                        );
                                    }
                                }));
                                match task {
                                    Ok(()) => {
                                        pool.finish_task();
                                        continue;
                                    }
                                    Err(payload) => {
                                        pool.finish_task();
                                        pool.poison();
                                        std::panic::resume_unwind(payload);
                                    }
                                }
                            }
                            if pool.steal_into(w) > 0 {
                                backoff.reset();
                                continue;
                            }
                            if pool.is_done() {
                                break;
                            }
                            backoff.idle();
                        }
                    });
                }
            });
        }));
        assert!(result.is_err(), "the panic must propagate through the join");
        assert!(pool.is_poisoned());
        // The doomed node and its whole subtree went unprocessed.
        assert!(processed.load(Ordering::Relaxed) < 2u64.pow(DEPTH + 1) - 1);
    }
}
