//! Configuration and result types for the exploration algorithms.

use std::time::Duration;

use txdpor_history::{EngineStats, History, IsolationLevel, LevelSpec, VarTable, Violation};

/// Configuration of a swapping-based exploration (`explore-ce` /
/// `explore-ce*`).
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Level specification used to drive the exploration (`I0`). Every
    /// assigned level must be prefix-closed and causally extensible for
    /// the guarantees of §5 to hold — uniform for the paper's algorithms,
    /// but a mixed assignment over the weak levels is accepted (each
    /// level's axioms are per-reader premises over `po`/`so`/`wr`, so the
    /// structural arguments lift pointwise).
    pub exploration: LevelSpec,
    /// Level specification used to filter histories before outputting
    /// (`I`). Equal to `exploration` for the plain `explore-ce` algorithm;
    /// `explore-ce*` filters by a stronger — possibly mixed — target spec.
    pub output: LevelSpec,
    /// Wall-clock budget; exploration stops (reporting `timed_out`) when
    /// exceeded.
    pub timeout: Option<Duration>,
    /// Collect every output history in the report (memory-heavy; meant for
    /// tests and small programs).
    pub collect_histories: bool,
    /// Apply the full `Optimality` condition of §5.3. Disabling it keeps
    /// the exploration sound and complete but may enumerate the same
    /// history several times (ablation mode).
    pub full_optimality: bool,
    /// Track output fingerprints to count duplicate outputs (used to verify
    /// optimality empirically; costs memory proportional to the number of
    /// outputs).
    pub track_duplicates: bool,
    /// Number of exploration workers. `1` (the default) runs the classic
    /// serial algorithm; larger values partition the root-level reordering
    /// frontier across `std::thread::scope` workers with per-worker
    /// consistency engines. The set of output-history fingerprints is
    /// identical to a serial run.
    pub workers: usize,
    /// Whether `workers` was requested explicitly
    /// ([`with_workers`](ExploreConfig::with_workers)) rather than derived
    /// ([`with_auto_workers`](ExploreConfig::with_auto_workers)). Derived
    /// worker counts fall back to the serial algorithm on single-core
    /// machines, where the parallel mode's seeding and merge overhead can
    /// only lose (measured at ~0.7x); explicit counts are honoured
    /// verbatim (an explicit `1` still means the serial algorithm).
    pub workers_explicit: bool,
    /// Memoise consistency verdicts by history fingerprint inside the
    /// per-level engines. Disabling this (the `no-memo` ablation) makes
    /// every check run the decision procedure — though still over the
    /// engine's incrementally synced index, so it isolates the memo's
    /// contribution, not the full cost of the old stateless checkers;
    /// results are unchanged either way.
    pub memoize: bool,
}

impl ExploreConfig {
    /// Configuration for `explore-ce(level)`: sound, complete and strongly
    /// optimal for prefix-closed, causally-extensible levels (Theorem 5.1).
    pub fn explore_ce(level: IsolationLevel) -> Self {
        Self::explore_ce_star_spec(LevelSpec::uniform(level), LevelSpec::uniform(level))
    }

    /// Configuration for `explore-ce*(base, target)`: explores under the
    /// weaker `base` level and filters outputs with `target`
    /// (Corollary 6.2). `base` must be weaker than or equal to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is stronger than `target` or not causally
    /// extensible.
    pub fn explore_ce_star(base: IsolationLevel, target: IsolationLevel) -> Self {
        Self::explore_ce_star_spec(LevelSpec::uniform(base), LevelSpec::uniform(target))
    }

    /// Mixed-level `explore-ce*`: explores under the causally-extensible
    /// `base` spec and filters outputs by the `target` spec — e.g. a
    /// uniform CC base with a target assigning SER to payment transactions
    /// and CC elsewhere. `base` must be pointwise weaker than or equal to
    /// `target` so that the exploration enumerates a superset of the
    /// target's histories (the filtering argument of Corollary 6.2 lifts
    /// pointwise).
    ///
    /// # Panics
    ///
    /// Panics if `base` is pointwise stronger than `target` somewhere or
    /// assigns a level that is not causally extensible.
    pub fn explore_ce_star_spec(base: LevelSpec, target: LevelSpec) -> Self {
        assert!(
            base.weaker_or_equal(&target),
            "base spec {base} must be pointwise weaker than target {target}"
        );
        assert!(
            base.is_causally_extensible(),
            "base spec {base} must only assign causally extensible levels"
        );
        ExploreConfig {
            exploration: base,
            output: target,
            timeout: None,
            collect_histories: false,
            full_optimality: true,
            track_duplicates: false,
            workers: 1,
            workers_explicit: false,
            memoize: true,
        }
    }

    /// Sets a wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Collects every output history in the report.
    pub fn collecting_histories(mut self) -> Self {
        self.collect_histories = true;
        self
    }

    /// Disables the `Optimality` restriction on swaps (ablation mode).
    pub fn without_optimality(mut self) -> Self {
        self.full_optimality = false;
        self
    }

    /// Tracks duplicate outputs (for optimality validation).
    pub fn tracking_duplicates(mut self) -> Self {
        self.track_duplicates = true;
        self
    }

    /// Partitions the exploration across `workers` threads (clamped to at
    /// least one). Output-history fingerprints are identical to a serial
    /// run; only wall-clock time and the order of collected histories
    /// change. The count is taken as an explicit override: no single-core
    /// fallback applies (use
    /// [`with_auto_workers`](ExploreConfig::with_auto_workers) for that).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self.workers_explicit = true;
        self
    }

    /// Like [`with_workers`](ExploreConfig::with_workers), but treats the
    /// count as a *derived* default (e.g. from
    /// `std::thread::available_parallelism`): when the machine reports a
    /// single core the exploration automatically falls back to the serial
    /// algorithm.
    pub fn with_auto_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self.workers_explicit = false;
        self
    }

    /// The worker count the exploration will actually use, given the
    /// detected parallelism (`None` when detection failed): derived counts
    /// collapse to `1` on single-core machines, explicit counts are kept.
    pub fn effective_workers(&self, detected: Option<usize>) -> usize {
        if self.workers > 1 && !self.workers_explicit && detected == Some(1) {
            1
        } else {
            self.workers
        }
    }

    /// Number of worker threads the parallel mode should actually spawn
    /// for a seeded frontier of `frontier_len` nodes: never more than the
    /// tasks available, so no thread is created just to idle (work
    /// stealing cannot conjure tasks that never existed — a frontier of 3
    /// nodes feeds at most 3 workers, stealing only rebalances their
    /// subtrees later). Returns `0` for an empty frontier: the seeding
    /// pass finished the exploration and the worker phase is skipped.
    pub fn spawn_workers(&self, frontier_len: usize) -> usize {
        self.workers.min(frontier_len)
    }

    /// Disables fingerprint memoisation inside the consistency engines
    /// (ablation isolating the memo's contribution; the incremental index
    /// sync stays on).
    pub fn without_memo(mut self) -> Self {
        self.memoize = false;
        self
    }

    /// Short label of the configuration, matching the paper's notation:
    /// `CC` for `explore-ce(CC)`, `RA + CC` for `explore-ce*(RA, CC)`;
    /// mixed specs render their override list, e.g.
    /// `CC + CC[s0.t1=SER]`.
    pub fn label(&self) -> String {
        if self.exploration == self.output {
            self.exploration.label()
        } else {
            format!("{} + {}", self.exploration.label(), self.output.label())
        }
    }
}

/// Statistics and results of an exploration run.
#[derive(Clone, Debug, Default)]
pub struct ExplorationReport {
    /// Number of (recursive) calls to `explore`, i.e. partial histories
    /// visited.
    pub explore_calls: u64,
    /// Number of complete executions reached (before the `Valid` output
    /// filter) — the "end states" of the paper's evaluation.
    pub end_states: u64,
    /// Number of histories output (after the `Valid` filter) — the
    /// "histories" column of the paper's tables.
    pub outputs: u64,
    /// Number of outputs whose read-from fingerprint had already been
    /// output (only counted when duplicate tracking is enabled; zero for an
    /// optimal algorithm).
    pub duplicate_outputs: u64,
    /// Number of explorations that got stuck: a read had no valid writer to
    /// read from (zero for a strongly-optimal algorithm under a
    /// causally-extensible level).
    pub blocked: u64,
    /// Number of output histories violating the user assertion.
    pub assertion_violations: u64,
    /// Whether the exploration hit its wall-clock budget.
    pub timed_out: bool,
    /// Wall-clock duration of the exploration.
    pub duration: Duration,
    /// Number of worker threads that actually explored (`1` for a serial
    /// run; the parallel mode caps the spawn at the seeded frontier size,
    /// so this can be smaller than the configured
    /// [`workers`](ExploreConfig::workers)).
    pub workers: usize,
    /// Total exploration nodes migrated between workers by work stealing
    /// (`0` for a serial run). A zero on a multi-worker run means the
    /// seeding pass alone balanced the tree.
    pub steals: u64,
    /// Largest number of events of any explored history (a proxy for the
    /// per-branch memory footprint; the algorithm is polynomial space).
    pub max_events: usize,
    /// Largest number of communication-graph components any decomposed
    /// history split into (0 when nothing decomposed — e.g. plain
    /// `explore-ce`, which runs no output filter).
    pub components: u64,
    /// Transaction count of the largest component of the
    /// most-fragmented decomposed history (0 when nothing decomposed).
    pub largest_component: u64,
    /// Reordering-candidate transactions skipped by the static
    /// independence relation before their external reads were even
    /// scanned (each skip is a transaction the dynamic `writes_var`
    /// filter would have rejected read by read).
    pub statically_pruned: u64,
    /// Total consistency checks served by the exploration-level engines.
    pub engine_checks: u64,
    /// Consistency checks answered from the engines' fingerprint memo.
    pub engine_memo_hits: u64,
    /// Remaining engine counters (memo misses/evictions/occupancy, the
    /// incremental-sync vs full-rebuild split and the total nanoseconds
    /// spent inside `check`), summed over every engine of the run.
    pub engine_stats: EngineStats,
    /// Output histories, when collection was requested.
    pub histories: Vec<History>,
    /// First assertion-violating history, if any.
    pub violating_history: Option<History>,
    /// Violation core of the first end state the output filter rejected
    /// (`explore-ce*` only): the minimal cycle of `so`/`wr`/forced edges
    /// showing why that history fails the target spec, reconstructed on
    /// demand through the engine's evidence path
    /// ([`txdpor_history::ConsistencyChecker::check_witnessed`]) without
    /// touching its memoised fast path. `None` when nothing was filtered.
    pub first_rejection: Option<Violation>,
    /// Interning table for the global variables of the program, for
    /// rendering histories.
    pub vars: VarTable,
}

impl ExplorationReport {
    /// Number of end states filtered out by the `Valid` check
    /// (`explore-ce*` only).
    pub fn filtered_out(&self) -> u64 {
        self.end_states - self.outputs
    }

    /// Whether any output violated the assertion.
    pub fn has_violation(&self) -> bool {
        self.assertion_violations > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).label(),
            "CC"
        );
        assert_eq!(
            ExploreConfig::explore_ce_star(
                IsolationLevel::CausalConsistency,
                IsolationLevel::Serializability
            )
            .label(),
            "CC + SER"
        );
        assert_eq!(
            ExploreConfig::explore_ce_star(
                IsolationLevel::Trivial,
                IsolationLevel::CausalConsistency
            )
            .label(),
            "true + CC"
        );
    }

    #[test]
    fn mixed_spec_labels() {
        use txdpor_history::LevelSpec;
        let base = LevelSpec::uniform(IsolationLevel::CausalConsistency);
        let target = base
            .clone()
            .with_override(0, 1, IsolationLevel::Serializability);
        let c = ExploreConfig::explore_ce_star_spec(base, target);
        assert_eq!(c.label(), "CC + CC[s0.t1=SER]");
    }

    #[test]
    #[should_panic(expected = "pointwise weaker")]
    fn mixed_star_requires_pointwise_weaker_base() {
        use txdpor_history::LevelSpec;
        // CC base vs a target demoting one position to RC: the base is
        // *stronger* there, so filtering would be unsound.
        let target = LevelSpec::uniform(IsolationLevel::Serializability).with_override(
            0,
            0,
            IsolationLevel::ReadCommitted,
        );
        ExploreConfig::explore_ce_star_spec(
            LevelSpec::uniform(IsolationLevel::CausalConsistency),
            target,
        );
    }

    #[test]
    #[should_panic(expected = "weaker than target")]
    fn star_requires_weaker_base() {
        ExploreConfig::explore_ce_star(
            IsolationLevel::Serializability,
            IsolationLevel::CausalConsistency,
        );
    }

    #[test]
    #[should_panic(expected = "causally extensible")]
    fn star_requires_causally_extensible_base() {
        ExploreConfig::explore_ce_star(
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializability,
        );
    }

    #[test]
    fn builder_methods_compose() {
        let c = ExploreConfig::explore_ce(IsolationLevel::ReadAtomic)
            .with_timeout(Duration::from_secs(5))
            .collecting_histories()
            .without_optimality()
            .tracking_duplicates();
        assert_eq!(c.timeout, Some(Duration::from_secs(5)));
        assert!(c.collect_histories);
        assert!(!c.full_optimality);
        assert!(c.track_duplicates);
    }

    #[test]
    fn auto_workers_fall_back_to_serial_on_one_core() {
        let auto =
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).with_auto_workers(4);
        assert_eq!(auto.effective_workers(Some(1)), 1, "derived count yields");
        assert_eq!(auto.effective_workers(Some(8)), 4);
        assert_eq!(
            auto.effective_workers(None),
            4,
            "unknown parallelism keeps the request"
        );
        let explicit = ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).with_workers(4);
        assert_eq!(
            explicit.effective_workers(Some(1)),
            4,
            "explicit count overrides"
        );
        let serial = ExploreConfig::explore_ce(IsolationLevel::CausalConsistency);
        assert_eq!(serial.effective_workers(Some(16)), 1);
    }

    #[test]
    fn with_workers_zero_clamps_to_serial() {
        let c = ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).with_workers(0);
        assert_eq!(c.workers, 1, "zero workers clamps to the serial minimum");
        assert_eq!(c.effective_workers(Some(8)), 1);
        let auto =
            ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).with_auto_workers(0);
        assert_eq!(auto.workers, 1);
    }

    #[test]
    fn one_worker_always_means_the_serial_algorithm() {
        // An explicit 1 must never enter the parallel mode, whatever the
        // detected parallelism.
        let c = ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).with_workers(1);
        assert_eq!(c.effective_workers(Some(64)), 1);
        assert_eq!(c.effective_workers(None), 1);
    }

    #[test]
    fn spawn_workers_never_exceeds_the_frontier() {
        let c = ExploreConfig::explore_ce(IsolationLevel::CausalConsistency).with_workers(4);
        assert_eq!(c.spawn_workers(100), 4, "enough tasks: full worker count");
        assert_eq!(c.spawn_workers(3), 3, "more workers than tasks: clamp");
        assert_eq!(c.spawn_workers(1), 1);
        assert_eq!(
            c.spawn_workers(0),
            0,
            "empty frontier: the seeding pass finished everything, spawn nobody"
        );
    }

    #[test]
    fn report_derived_quantities() {
        let report = ExplorationReport {
            end_states: 10,
            outputs: 7,
            assertion_violations: 1,
            ..Default::default()
        };
        assert_eq!(report.filtered_out(), 3);
        assert!(report.has_violation());
    }
}
