//! A deterministic simulated distributed key-value store, used to check
//! real (simulated) executions against claimed isolation levels.
//!
//! The repo's checking and exploration stack reasons about histories it
//! *enumerates*; this crate produces histories that *happened*: a sharded
//! MVCC store (per-shard version chains, two-phase commit, a timestamp
//! oracle) whose nodes communicate only over a seeded simulated network
//! with pluggable fault injection — message delay, reordering,
//! duplication, loss, and healing node-pair partitions. Client drivers run
//! the transaction programs from `crates/apps` with timeout/retry/backoff,
//! a recorder captures the committed execution as a native
//! [`History`](txdpor_history::History), and the deployment's *claimed*
//! [`LevelSpec`](txdpor_history::LevelSpec) is checked against it with the
//! witnessed checker: a correct protocol yields replayable witnesses, a
//! buggy or over-claiming one (see [`Deployment::si_unchecked`]) yields a
//! minimal violation core naming the offending transactions.
//!
//! Crashes are faults too: a plan may schedule shard crash–restart
//! windows (`crash=<node>@<from>..<until>`, or the `crashy` /
//! `crash-chaos` presets). Shards write a simulated WAL ahead of every
//! state change and recover by replay, resolving in-doubt two-phase
//! commits by querying the coordinator's decision record with presumed
//! abort as the fallback. The deliberately broken [`Deployment::no_wal`]
//! skips WAL-logging prewrites and demonstrably loses updates across
//! crashes — the second end-to-end regression the checker must catch.
//!
//! Determinism contract: a run is a pure function of `(program,
//! deployment, shards, seed, fault plan, retry policy)`. Same config, same
//! bits — `History::fingerprint_hash` equality is asserted in tests and
//! CI, so any checker verdict on a simulated run can be replayed
//! endlessly for debugging.
//!
//! Module map:
//! - [`fault`] — fault plans (presets and a `key=value` mini-language);
//! - [`msg`] — addresses and the RPC vocabulary;
//! - [`deploy`] — protocol modes (`ser`/`si`/`causal`) and deployments,
//!   including the intentionally weakened `si-unchecked`;
//! - [`server`] — shards (MVCC + locks) and the timestamp oracle;
//! - [`client`] — the per-session driver state machine with retry policy;
//! - [`recorder`] — committed execution → `History` + claimed spec;
//! - [`simulation`] — the seeded event loop tying it all together.

#![warn(missing_docs)]

pub mod client;
pub mod deploy;
pub mod fault;
pub mod msg;
pub mod recorder;
pub mod server;
pub mod simulation;

pub use client::{Client, ClientError, ClientEvent, CommittedTx, RetryPolicy};
pub use deploy::{Deployment, ProtocolMode};
pub use fault::{Crash, FaultPlan, ParseFaultError, Partition};
pub use msg::{Addr, Decision, Message, Payload, Reply, Request, TxnId};
pub use recorder::record;
pub use server::{Oracle, RecoveryStats, Shard, WalRecord};
pub use simulation::{run_simulation, run_simulation_traced, SimConfig, SimOutcome, SimStats};
