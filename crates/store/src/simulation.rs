//! The deterministic simulation loop: a seeded event queue carrying every
//! message and timer of the deployment, with fault injection on the wire.
//!
//! The entire run is a function of `(program, deployment, num_shards,
//! seed, fault plan, retry policy)`: all scheduler state lives in ordered
//! containers, ties in the event queue are broken by a monotone sequence
//! number, and the only randomness is a single [`StdRng`] seeded from the
//! run seed (network delays and faults) plus per-client jitter streams
//! derived from it. Replaying a config therefore reproduces the exact same
//! message trace, the same commit order, and a bit-identical recorded
//! [`History`] — which is what makes checker verdicts on simulated runs
//! debuggable.
//!
//! Faults applied per message send, in order: partition (dropped while a
//! partition window covers the endpoint pair), random drop, duplication,
//! base delay, and a reorder spike (occasionally inflating one copy's
//! delay so it overtakes later traffic).
//!
//! Crash faults are scheduled, not random: every [`Crash`](crate::Crash)
//! window of the plan becomes a `Crash` event at its start (the shard
//! drops its volatile state) and a `Restart` event at its end (the shard
//! replays its WAL and queries coordinators about in-doubt attempts).
//! While a shard is down, messages addressed to it are dropped *at
//! delivery time* — the network buffered them, but nobody was listening.
//! Only shards crash: the oracle and the clients model the durable side of
//! the deployment. Shard invariants
//! ([`Shard::check_invariants`](crate::Shard)) are asserted after every
//! restart and at the end of the run; breaches are reported in
//! [`SimOutcome::invariant_breaches`] rather than panicking, so the
//! `simulate` binary can surface them as failures.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txdpor_history::{History, LevelSpec, VarTable};
use txdpor_program::Program;

use crate::client::{Client, ClientError, CommittedTx, Effects, RetryPolicy, TimerKind};
use crate::deploy::Deployment;
use crate::fault::FaultPlan;
use crate::msg::{Addr, Message, Payload, Reply};
use crate::recorder::record;
use crate::server::{Oracle, Shard};

/// Everything a simulation run is a function of.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The client program (one session per client).
    pub program: Program,
    /// Mode assignment and isolation claims of the cluster.
    pub deployment: Deployment,
    /// Number of storage shards (variables are hashed across them).
    pub num_shards: u32,
    /// Seed of the network and jitter randomness.
    pub seed: u64,
    /// The fault plan applied to every message.
    pub faults: FaultPlan,
    /// Client timeout/retry/backoff parameters.
    pub retry: RetryPolicy,
    /// Hard cap on simulated time; runs that exceed it stop (clients that
    /// have not finished simply stop contributing transactions).
    pub max_sim_time_us: u64,
}

impl SimConfig {
    /// A config with default shards (3), retry policy, and time cap.
    pub fn new(program: Program, deployment: Deployment, seed: u64, faults: FaultPlan) -> Self {
        SimConfig {
            program,
            deployment,
            num_shards: 3,
            seed,
            faults,
            retry: RetryPolicy::default(),
            max_sim_time_us: 120_000_000,
        }
    }
}

/// Counters of one run, for JSON rows and smoke checks.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages enqueued on the wire (including duplicates).
    pub messages: u64,
    /// Messages lost to partitions or random drops.
    pub dropped: u64,
    /// Messages duplicated by the network.
    pub duplicated: u64,
    /// RPC resends performed by clients after timeouts.
    pub rpc_resends: u64,
    /// Attempts aborted by conflicts or timeout budgets.
    pub attempts_aborted: u64,
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions abandoned after the retry budget.
    pub given_up: u64,
    /// Simulated time consumed, in microseconds.
    pub sim_time_us: u64,
    /// Shard crashes injected by the fault plan.
    pub crashes: u64,
    /// Messages dropped because their destination shard was down.
    pub crash_drops: u64,
    /// WAL records replayed across all shard recoveries.
    pub wal_replayed: u64,
    /// In-doubt attempts resolved to commit by a coordinator decision.
    pub indoubt_committed: u64,
    /// In-doubt attempts resolved by the presumed-abort rule.
    pub indoubt_aborted: u64,
}

/// The result of a run: the recorded history, its claimed spec, and run
/// statistics.
#[derive(Debug)]
pub struct SimOutcome {
    /// The committed execution, in commit-decision order.
    pub history: History,
    /// The variable interner shared by program and history.
    pub vars: VarTable,
    /// The deployment's claimed isolation spec for this history.
    pub claimed: LevelSpec,
    /// Run counters.
    pub stats: SimStats,
    /// Typed client failures (retry exhaustion, body errors).
    pub errors: Vec<ClientError>,
    /// Shard-invariant breaches detected after a restart or at the end of
    /// the run (empty on a healthy run — including every honest crashy
    /// run; a breach means the recovery path itself is broken).
    pub invariant_breaches: Vec<String>,
}

#[derive(Debug)]
enum SimEvent {
    Deliver { dst: Addr, msg: Message },
    Timer { client: u32, kind: TimerKind },
    Crash { shard: u32 },
    Restart { shard: u32 },
}

#[derive(Debug)]
struct QueuedEvent {
    time: u64,
    seq: u64,
    ev: SimEvent,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    /// Reversed so the `BinaryHeap` pops the *earliest* event; ties broken
    /// by insertion order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct Network {
    rng: StdRng,
    faults: FaultPlan,
    num_shards: u32,
    nodes: u32,
    seq: u64,
    queue: BinaryHeap<QueuedEvent>,
    messages: u64,
    dropped: u64,
    duplicated: u64,
}

impl Network {
    fn push(&mut self, time: u64, ev: SimEvent) {
        self.seq += 1;
        self.queue.push(QueuedEvent {
            time,
            seq: self.seq,
            ev,
        });
    }

    /// Puts a message on the wire, applying the fault plan.
    fn send(&mut self, now: u64, from: Addr, to: Addr, msg: Message) {
        let (a, b) = (
            from.node_index(self.num_shards),
            to.node_index(self.num_shards),
        );
        if self.faults.partitioned(a, b, now, self.nodes) {
            self.dropped += 1;
            return;
        }
        if self.rng.gen_bool(self.faults.drop) {
            self.dropped += 1;
            return;
        }
        let copies = if self.rng.gen_bool(self.faults.dup) {
            self.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let mut delay = self
                .rng
                .gen_range(self.faults.delay_us.0..=self.faults.delay_us.1);
            if self.rng.gen_bool(self.faults.reorder) {
                delay += self.rng.gen_range(0..=self.faults.reorder_extra_us);
            }
            self.messages += 1;
            self.push(
                now + delay.max(1),
                SimEvent::Deliver {
                    dst: to,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// Applies the side effects of a client step at time `now`.
    fn apply(&mut self, now: u64, client: u32, fx: Effects) {
        for (to, msg) in fx.sends {
            self.send(now, Addr::Client(client), to, msg);
        }
        for (delay, kind) in fx.timers {
            self.push(now + delay.max(1), SimEvent::Timer { client, kind });
        }
    }
}

/// Runs one simulation to completion (all clients done, queue drained, or
/// the time cap reached) and records the committed execution.
pub fn run_simulation(config: &SimConfig) -> SimOutcome {
    run_simulation_traced(config).0
}

/// Like [`run_simulation`], additionally returning the sorted distinct
/// simulated times (µs) at which events were processed — the decision
/// points a crash-at-every-step sweep can target.
pub fn run_simulation_traced(config: &SimConfig) -> (SimOutcome, Vec<u64>) {
    let mut vars = VarTable::new();
    let init = config.program.initial_values_interned(&mut vars);
    let num_clients = config.program.sessions.len() as u32;

    let mut shards: Vec<Shard> = (0..config.num_shards)
        .map(|i| {
            Shard::with_durability(i, init.iter().cloned().collect(), config.deployment.durable)
        })
        .collect();
    let mut oracle = Oracle::new();
    let mut clients: Vec<Client> = config
        .program
        .sessions
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let txs = s.transactions.clone();
            let modes = txs
                .iter()
                .map(|t| config.deployment.mode_of(&t.name))
                .collect();
            Client::new(
                i as u32,
                txs,
                modes,
                config.retry,
                config.num_shards,
                config.seed,
            )
        })
        .collect();

    let mut net = Network {
        rng: StdRng::seed_from_u64(config.seed),
        faults: config.faults.clone(),
        num_shards: config.num_shards,
        nodes: config.num_shards + 1 + num_clients,
        seq: 0,
        queue: BinaryHeap::new(),
        messages: 0,
        dropped: 0,
        duplicated: 0,
    };

    let mut committed: Vec<CommittedTx> = Vec::new();
    let mut errors: Vec<ClientError> = Vec::new();
    let mut invariant_breaches: Vec<String> = Vec::new();
    let mut crashes_injected = 0u64;
    let mut crash_drops = 0u64;
    let mut trace: Vec<u64> = Vec::new();

    // Crash schedules are part of the plan, not of the random stream:
    // every window becomes one Crash and one Restart event up front, so
    // they land at exactly the planned times regardless of traffic.
    for c in &config.faults.crashes {
        let shard = c.node % config.num_shards;
        net.push(c.from_us, SimEvent::Crash { shard });
        net.push(c.until_us, SimEvent::Restart { shard });
    }

    for (i, client) in clients.iter_mut().enumerate() {
        let mut fx = Effects::default();
        client.start(&mut vars, &mut committed, &mut errors, &mut fx);
        net.apply(0, i as u32, fx);
    }

    let mut now = 0u64;
    while let Some(qe) = net.queue.pop() {
        if qe.time > config.max_sim_time_us {
            break;
        }
        if clients.iter().all(|c| c.is_done()) {
            break;
        }
        now = qe.time;
        if trace.last() != Some(&now) {
            trace.push(now);
        }
        match qe.ev {
            SimEvent::Crash { shard } => {
                crashes_injected += 1;
                shards[shard as usize].crash();
            }
            SimEvent::Restart { shard } => {
                let queries = shards[shard as usize].restart();
                if let Err(e) = shards[shard as usize].check_invariants() {
                    invariant_breaches.push(format!("shard {shard} after restart at {now}µs: {e}"));
                }
                for (to, msg) in queries {
                    net.send(now, Addr::Shard(shard), to, msg);
                }
            }
            SimEvent::Deliver { dst, msg } => match dst {
                Addr::Shard(i) => {
                    // A crashed shard processes nothing: traffic addressed
                    // to it during the outage is dropped on delivery.
                    if config.faults.crashed(i, now, config.num_shards) {
                        crash_drops += 1;
                    } else {
                        match msg.payload {
                            Payload::Request(req) => {
                                for (to, reply) in
                                    shards[i as usize].handle(msg.from, msg.req_id, req)
                                {
                                    net.send(now, dst, to, reply);
                                }
                            }
                            // A coordinator's answer to a recovery query.
                            Payload::Reply(Reply::Decision { txn, decision }) => {
                                shards[i as usize].on_decision(txn, decision);
                            }
                            Payload::Reply(_) => {}
                        }
                    }
                }
                Addr::Oracle => {
                    if let Payload::Request(req) = msg.payload {
                        for (to, reply) in oracle.handle(msg.from, msg.req_id, &req) {
                            net.send(now, dst, to, reply);
                        }
                    }
                }
                Addr::Client(c) => {
                    let mut fx = Effects::default();
                    clients[c as usize].on_message(
                        msg,
                        &mut vars,
                        &mut committed,
                        &mut errors,
                        &mut fx,
                    );
                    net.apply(now, c, fx);
                }
            },
            SimEvent::Timer { client, kind } => {
                let mut fx = Effects::default();
                clients[client as usize].on_timer(
                    kind,
                    &mut vars,
                    &mut committed,
                    &mut errors,
                    &mut fx,
                );
                net.apply(now, client, fx);
            }
        }
    }

    // End-of-run shard audit. Once every client is done, every attempt is
    // decided *and acknowledged* (commit/abort resends are unlimited), so
    // no shard may still hold a lock — a held lock here is a resurrected
    // one, exactly the bug class recovery must not introduce.
    for shard in &shards {
        if let Err(e) = shard.check_invariants() {
            invariant_breaches.push(format!("shard {} at end of run: {e}", shard.id()));
        }
    }
    if clients.iter().all(|c| c.is_done()) {
        for shard in &shards {
            if shard.holds_locks() {
                invariant_breaches.push(format!(
                    "shard {} holds locks after all clients finished (stranded or resurrected lock)",
                    shard.id()
                ));
            }
        }
    }

    let given_up = errors
        .iter()
        .filter(|e| matches!(e, ClientError::RetriesExhausted { .. }))
        .count() as u64;
    let recovery = shards
        .iter()
        .map(|s| s.recovery_stats())
        .fold((0u64, 0u64, 0u64), |acc, r| {
            (
                acc.0 + r.wal_replayed,
                acc.1 + r.indoubt_committed,
                acc.2 + r.indoubt_aborted,
            )
        });
    let stats = SimStats {
        messages: net.messages,
        dropped: net.dropped,
        duplicated: net.duplicated,
        rpc_resends: clients.iter().map(|c| c.rpc_resends).sum(),
        attempts_aborted: clients.iter().map(|c| c.attempts_aborted).sum(),
        committed: committed.len() as u64,
        given_up,
        sim_time_us: now,
        crashes: crashes_injected,
        crash_drops,
        wal_replayed: recovery.0,
        indoubt_committed: recovery.1,
        indoubt_aborted: recovery.2,
    };
    let (history, claimed) = record(&committed, init, &config.deployment);
    (
        SimOutcome {
            history,
            vars,
            claimed,
            stats,
            errors,
            invariant_breaches,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdpor_program::dsl::*;

    fn counter_program(sessions: usize, bumps: usize) -> Program {
        let mut ss = Vec::new();
        for _ in 0..sessions {
            let txs = (0..bumps)
                .map(|_| {
                    tx(
                        "bump",
                        vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
                    )
                })
                .collect();
            ss.push(session(txs));
        }
        program(ss)
    }

    #[test]
    fn fault_free_serializable_run_commits_everything() {
        let cfg = SimConfig::new(
            counter_program(3, 2),
            Deployment::ser(),
            7,
            FaultPlan::none(),
        );
        let out = run_simulation(&cfg);
        assert_eq!(out.stats.committed, 6);
        assert_eq!(out.stats.given_up, 0);
        assert!(out.errors.is_empty());
        assert!(
            out.claimed.satisfies(&out.history),
            "serializable deployment must produce a serializable history"
        );
    }

    #[test]
    fn same_seed_same_history_different_seed_usually_differs() {
        let cfg = SimConfig::new(
            counter_program(3, 2),
            Deployment::si(),
            11,
            FaultPlan::preset("lossy").expect("lossy is a built-in preset"),
        );
        let a = run_simulation(&cfg);
        let b = run_simulation(&cfg);
        assert_eq!(a.history.fingerprint_hash(), b.history.fingerprint_hash());
        assert_eq!(a.stats, b.stats);
    }
}
