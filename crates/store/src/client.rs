//! The client driver: one per session, executing its transaction sequence
//! against the cluster over RPCs with timeout/retry/exponential backoff.
//!
//! A client is a message-driven state machine. Each program transaction is
//! run as a sequence of *attempts*; an attempt that hits a conflict
//! (prewrite rejection, locking-read conflict) or an RPC timeout budget is
//! aborted everywhere it touched and retried after a jittered exponential
//! backoff, up to [`RetryPolicy::max_attempts`] — then the client gives up
//! on that transaction with a typed [`ClientError`] instead of panicking.
//!
//! The transaction body is executed by *replay*, exactly like the
//! repo-wide operational semantics (`txdpor_program::semantics`): the
//! body's instructions are re-walked against the attempt's recorded
//! [`ClientEvent`] log every time a read reply arrives, so local state
//! reconstruction is deterministic and only external reads suspend the
//! walk.
//!
//! Commit protocol (two-phase, Percolator-shaped): prewrite all written
//! shards (acquiring exclusive locks), then draw a commit timestamp, then
//! commit everywhere. **The commit decision point is the receipt of the
//! commit timestamp**: from there the attempt is recorded as committed and
//! `Commit` messages are resent indefinitely (the decision cannot be
//! rolled back, so the protocol keeps pushing until every shard learns
//! it). `Abort` messages are likewise resent until acknowledged by every
//! touched shard, which prevents stranded locks.
//!
//! The client is also the 2PC *coordinator's decision record*: every
//! commit decision is remembered (attempt → commit timestamp), and a shard
//! recovering from a crash may ask about an in-doubt attempt with
//! [`Request::QueryDecision`]. The answer follows the presumed-abort rule:
//! `Committed(ts)` if the decision was recorded, `InProgress` if the
//! queried attempt is the client's current attempt and still before its
//! decision point, and `Aborted` otherwise — no recorded commit means the
//! attempt did not and will never commit.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txdpor_history::{Value, Var, VarTable};
use txdpor_program::{Env, EvalError, Instr, TransactionDef};

use crate::deploy::ProtocolMode;
use crate::msg::{Addr, Decision, Message, Payload, Reply, Request, TxnId};

/// Timeout, retry and backoff parameters of the client driver.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Backoff before the second attempt, in microseconds.
    pub base_us: u64,
    /// Multiplicative backoff growth per attempt.
    pub factor: u64,
    /// Upper bound of the (pre-jitter) backoff.
    pub cap_us: u64,
    /// Attempts per transaction before giving up with a typed error.
    pub max_attempts: u32,
    /// Relative jitter: the backoff is scaled by a uniform factor in
    /// `[1 - jitter_frac, 1 + jitter_frac]`.
    pub jitter_frac: f64,
    /// RPC timeout before a resend, in microseconds.
    pub rpc_timeout_us: u64,
    /// Resends of a single RPC before the attempt is abandoned (commit and
    /// abort RPCs are exempt — they resend until acknowledged).
    pub max_rpc_resends: u32,
    /// Delay before retrying a read that hit an in-flight commit's lock.
    pub locked_retry_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_us: 200,
            factor: 2,
            cap_us: 20_000,
            max_attempts: 25,
            jitter_frac: 0.2,
            rpc_timeout_us: 4_000,
            max_rpc_resends: 8,
            locked_retry_us: 300,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before attempt `attempt + 1` (so `attempt` is
    /// the 1-based number of the attempt that just failed). The pre-jitter
    /// value is `min(cap_us, base_us * factor^(attempt-1))`; jitter scales
    /// it by a uniform factor in `[1 - jitter_frac, 1 + jitter_frac]`
    /// drawn from `rng`, and the result is at least 1 µs.
    pub fn backoff_us(&self, attempt: u32, rng: &mut StdRng) -> u64 {
        let exp = attempt.saturating_sub(1).min(63);
        let raw = self
            .base_us
            .saturating_mul(self.factor.saturating_pow(exp))
            .min(self.cap_us);
        let u: f64 = rng.gen();
        let scale = 1.0 + self.jitter_frac * (2.0 * u - 1.0);
        ((raw as f64 * scale) as u64).max(1)
    }
}

/// A typed client-driver failure, reported in
/// [`SimOutcome::errors`](crate::simulation::SimOutcome) instead of
/// panicking the simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// A transaction still conflicted (or timed out) after the policy's
    /// final attempt; the client gave it up and moved on.
    RetriesExhausted {
        /// The session (client) that gave up.
        session: u32,
        /// Program index of the abandoned transaction in its session.
        tx_index: usize,
        /// Name of the abandoned transaction type.
        name: String,
        /// How many attempts were made.
        attempts: u32,
    },
    /// The transaction body failed to evaluate (a workload bug, not a
    /// protocol bug); the client stops.
    Body {
        /// The session that hit the error.
        session: u32,
        /// Name of the offending transaction type.
        name: String,
        /// The evaluation error.
        detail: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::RetriesExhausted {
                session,
                tx_index,
                name,
                attempts,
            } => write!(
                f,
                "session {session} gave up on transaction {tx_index} ({name}) after {attempts} attempts"
            ),
            ClientError::Body {
                session,
                name,
                detail,
            } => write!(f, "session {session}: body of {name} failed to evaluate: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One event of an attempt's local log, mirroring the history event kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientEvent {
    /// A read. `external` reads came over the network (their `writer` is
    /// the attempt whose version was served, `None` for init); internal
    /// reads observed the attempt's own earlier write.
    Read {
        /// Variable read.
        var: Var,
        /// Value observed.
        value: Value,
        /// Installing attempt of the served version (`None` for init;
        /// meaningless for internal reads).
        writer: Option<TxnId>,
        /// Whether the read was served over the network.
        external: bool,
    },
    /// A buffered write.
    Write {
        /// Variable written.
        var: Var,
        /// Value written.
        value: Value,
    },
}

/// A committed transaction as the client decided it, in commit-decision
/// order; the [`recorder`](crate::recorder) turns these into a `History`.
#[derive(Clone, Debug)]
pub struct CommittedTx {
    /// The session (client) that committed it.
    pub session: u32,
    /// Program index of the transaction within its session.
    pub program_index: usize,
    /// Transaction type name.
    pub name: String,
    /// The winning attempt.
    pub txn: TxnId,
    /// The protocol mode it ran under.
    pub mode: ProtocolMode,
    /// The attempt's event log.
    pub events: Vec<ClientEvent>,
}

/// A timer owned by a client.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TimerKind {
    /// RPC timeout for the request with this id.
    Rpc(u64),
    /// A backoff / locked-retry wake-up; stale generations are ignored.
    Wake(u64),
}

/// Side effects of one client step, applied to the network by the
/// simulation loop.
#[derive(Debug, Default)]
pub struct Effects {
    /// Messages to send: `(destination, message)`.
    pub sends: Vec<(Addr, Message)>,
    /// Timers to schedule: `(delay in µs, kind)`.
    pub timers: Vec<(u64, TimerKind)>,
}

/// An in-flight RPC.
#[derive(Clone, Debug)]
struct PendingRpc {
    to: Addr,
    req: Request,
    resends: u32,
    /// Commit/abort RPCs: resend until acknowledged, never time out.
    unlimited: bool,
}

/// What to do once an abort round-trip completes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum AfterAbort {
    /// The attempt failed: back off and retry the same transaction.
    RetryAttempt,
    /// The program aborted voluntarily: move on without retrying.
    NextTx,
}

#[derive(Clone, Debug)]
enum Phase {
    AwaitStartTs,
    AwaitRead {
        var: Var,
    },
    LockedWait {
        var: Var,
    },
    AwaitPrewrite {
        pending: BTreeSet<u32>,
        conflicted: bool,
    },
    AwaitCommitTs,
    Committing {
        pending: BTreeSet<u32>,
    },
    Aborting {
        pending: BTreeSet<u32>,
        then: AfterAbort,
    },
    BackoffWait,
    Done,
}

/// The per-session client driver.
#[derive(Debug)]
pub struct Client {
    id: u32,
    txs: Vec<TransactionDef>,
    modes: Vec<ProtocolMode>,
    policy: RetryPolicy,
    num_shards: u32,
    rng: StdRng,

    cur: usize,
    attempt: u32,
    attempt_counter: u32,
    phase: Phase,

    txn: TxnId,
    start_ts: u64,
    events: Vec<ClientEvent>,
    touched: BTreeSet<u32>,
    next_req: u64,
    outstanding: BTreeMap<u64, PendingRpc>,
    wake_gen: u64,
    /// Coordinator decision record: attempt → commit timestamp, consulted
    /// by recovering shards via [`Request::QueryDecision`]. Absence of an
    /// entry means presumed abort (once the attempt is past its decision
    /// point).
    decisions: BTreeMap<u32, u64>,

    /// Total RPC resends performed (for run statistics).
    pub rpc_resends: u64,
    /// Attempts aborted due to conflicts or timeouts (for run statistics).
    pub attempts_aborted: u64,
}

impl Client {
    /// Creates the driver for session `id` running `txs` under the given
    /// per-transaction modes. The jitter stream is derived from the run
    /// seed and the client id, so runs are reproducible.
    pub fn new(
        id: u32,
        txs: Vec<TransactionDef>,
        modes: Vec<ProtocolMode>,
        policy: RetryPolicy,
        num_shards: u32,
        seed: u64,
    ) -> Self {
        assert_eq!(txs.len(), modes.len());
        assert!(num_shards > 0);
        let rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xC1E5 + id as u64),
        );
        Client {
            id,
            txs,
            modes,
            policy,
            num_shards,
            rng,
            cur: 0,
            attempt: 0,
            attempt_counter: 0,
            phase: Phase::Done,
            txn: TxnId {
                client: id,
                attempt: 0,
            },
            start_ts: 0,
            events: Vec::new(),
            touched: BTreeSet::new(),
            next_req: 0,
            outstanding: BTreeMap::new(),
            wake_gen: 0,
            decisions: BTreeMap::new(),
            rpc_resends: 0,
            attempts_aborted: 0,
        }
    }

    /// Whether the client has finished (or abandoned) its whole session.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done) && self.cur >= self.txs.len()
    }

    fn mode(&self) -> ProtocolMode {
        self.modes[self.cur]
    }

    fn shard_of(&self, var: Var) -> u32 {
        var.0 % self.num_shards
    }

    fn addr(&self) -> Addr {
        Addr::Client(self.id)
    }

    /// Registers and emits an RPC, scheduling its timeout.
    fn send(&mut self, to: Addr, req: Request, unlimited: bool, fx: &mut Effects) {
        if let Addr::Shard(i) = to {
            self.touched.insert(i);
        }
        self.next_req += 1;
        let req_id = self.next_req;
        fx.sends.push((
            to,
            Message {
                from: self.addr(),
                req_id,
                payload: Payload::Request(req.clone()),
            },
        ));
        fx.timers
            .push((self.policy.rpc_timeout_us, TimerKind::Rpc(req_id)));
        self.outstanding.insert(
            req_id,
            PendingRpc {
                to,
                req,
                resends: 0,
                unlimited,
            },
        );
    }

    /// Kicks the client off (called once at simulation start).
    pub fn start(
        &mut self,
        vars: &mut VarTable,
        committed: &mut Vec<CommittedTx>,
        errors: &mut Vec<ClientError>,
        fx: &mut Effects,
    ) {
        if self.cur >= self.txs.len() {
            self.phase = Phase::Done;
            return;
        }
        self.start_attempt(vars, committed, errors, fx);
    }

    fn start_attempt(
        &mut self,
        vars: &mut VarTable,
        committed: &mut Vec<CommittedTx>,
        errors: &mut Vec<ClientError>,
        fx: &mut Effects,
    ) {
        self.attempt += 1;
        self.attempt_counter += 1;
        self.txn = TxnId {
            client: self.id,
            attempt: self.attempt_counter,
        };
        self.start_ts = 0;
        self.events.clear();
        self.touched.clear();
        self.outstanding.clear();
        if self.mode().snapshot_reads() {
            self.phase = Phase::AwaitStartTs;
            self.send(Addr::Oracle, Request::StartTs, false, fx);
        } else {
            self.step_body(vars, committed, errors, fx);
        }
    }

    fn next_tx(
        &mut self,
        vars: &mut VarTable,
        committed: &mut Vec<CommittedTx>,
        errors: &mut Vec<ClientError>,
        fx: &mut Effects,
    ) {
        self.cur += 1;
        self.attempt = 0;
        self.outstanding.clear();
        if self.cur >= self.txs.len() {
            self.phase = Phase::Done;
        } else {
            self.start_attempt(vars, committed, errors, fx);
        }
    }

    /// Re-walks the transaction body against the attempt's event log and
    /// acts on the outcome (issue the next read RPC, move to commit, or
    /// abort voluntarily).
    fn step_body(
        &mut self,
        vars: &mut VarTable,
        committed: &mut Vec<CommittedTx>,
        errors: &mut Vec<ClientError>,
        fx: &mut Effects,
    ) {
        let body = self.txs[self.cur].body.clone();
        let mut walker = BodyWalker {
            events: &mut self.events,
            vars,
            env: Env::new(),
            cursor: 0,
        };
        match walker.walk(&body) {
            Err(e) => {
                errors.push(ClientError::Body {
                    session: self.id,
                    name: self.txs[self.cur].name.clone(),
                    detail: e.to_string(),
                });
                self.cur = self.txs.len();
                self.phase = Phase::Done;
            }
            Ok(Flow::Need(var)) => {
                let snapshot = self.mode().snapshot_reads().then_some(self.start_ts);
                let lock = self.mode().lock_reads();
                self.phase = Phase::AwaitRead { var };
                self.send(
                    Addr::Shard(self.shard_of(var)),
                    Request::Read {
                        txn: self.txn,
                        var,
                        snapshot,
                        lock,
                    },
                    false,
                    fx,
                );
            }
            Ok(Flow::Ended) => self.abort_attempt(AfterAbort::NextTx, vars, committed, errors, fx),
            Ok(Flow::Fallthrough) => self.finish_body(vars, committed, errors, fx),
        }
    }

    /// The final value of every variable the attempt wrote.
    fn write_set(&self) -> BTreeMap<Var, Value> {
        let mut ws = BTreeMap::new();
        for ev in &self.events {
            if let ClientEvent::Write { var, value } = ev {
                ws.insert(*var, value.clone());
            }
        }
        ws
    }

    /// Records the commit decision and starts pushing `Commit` everywhere
    /// the attempt touched.
    fn decide_commit(
        &mut self,
        commit_ts: u64,
        vars: &mut VarTable,
        committed: &mut Vec<CommittedTx>,
        errors: &mut Vec<ClientError>,
        fx: &mut Effects,
    ) {
        self.decisions.insert(self.txn.attempt, commit_ts);
        committed.push(CommittedTx {
            session: self.id,
            program_index: self.cur,
            name: self.txs[self.cur].name.clone(),
            txn: self.txn,
            mode: self.mode(),
            events: self.events.clone(),
        });
        let targets = self.touched.clone();
        if targets.is_empty() {
            self.next_tx(vars, committed, errors, fx);
            return;
        }
        self.outstanding.clear();
        for shard in &targets {
            self.send(
                Addr::Shard(*shard),
                Request::Commit {
                    txn: self.txn,
                    commit_ts,
                },
                true,
                fx,
            );
        }
        self.phase = Phase::Committing { pending: targets };
    }

    /// Body complete: prewrite the write set, or commit immediately when
    /// the attempt is read-only.
    fn finish_body(
        &mut self,
        vars: &mut VarTable,
        committed: &mut Vec<CommittedTx>,
        errors: &mut Vec<ClientError>,
        fx: &mut Effects,
    ) {
        let ws = self.write_set();
        if ws.is_empty() {
            // Read-only: nothing to install, the decision is immediate. A
            // locking-mode attempt still pushes `Commit` to release its
            // shared locks; snapshot-mode attempts touched nothing that
            // needs cleanup.
            if self.mode().lock_reads() {
                self.decide_commit(0, vars, committed, errors, fx);
            } else {
                committed.push(CommittedTx {
                    session: self.id,
                    program_index: self.cur,
                    name: self.txs[self.cur].name.clone(),
                    txn: self.txn,
                    mode: self.mode(),
                    events: self.events.clone(),
                });
                self.next_tx(vars, committed, errors, fx);
            }
            return;
        }
        let mut by_shard: BTreeMap<u32, Vec<(Var, Value)>> = BTreeMap::new();
        for (var, value) in ws {
            by_shard
                .entry(self.shard_of(var))
                .or_default()
                .push((var, value));
        }
        let pending: BTreeSet<u32> = by_shard.keys().copied().collect();
        for (shard, writes) in by_shard {
            self.send(
                Addr::Shard(shard),
                Request::Prewrite {
                    txn: self.txn,
                    start_ts: self.start_ts,
                    writes,
                    conflict_check: self.mode().conflict_check(),
                },
                false,
                fx,
            );
        }
        self.phase = Phase::AwaitPrewrite {
            pending,
            conflicted: false,
        };
    }

    /// Aborts the attempt everywhere it touched, then retries or moves on.
    fn abort_attempt(
        &mut self,
        then: AfterAbort,
        vars: &mut VarTable,
        committed: &mut Vec<CommittedTx>,
        errors: &mut Vec<ClientError>,
        fx: &mut Effects,
    ) {
        if then == AfterAbort::RetryAttempt {
            self.attempts_aborted += 1;
        }
        self.outstanding.clear();
        let targets = self.touched.clone();
        if targets.is_empty() {
            self.after_abort(then, vars, committed, errors, fx);
            return;
        }
        for shard in &targets {
            self.send(
                Addr::Shard(*shard),
                Request::Abort { txn: self.txn },
                true,
                fx,
            );
        }
        self.phase = Phase::Aborting {
            pending: targets,
            then,
        };
    }

    fn after_abort(
        &mut self,
        then: AfterAbort,
        vars: &mut VarTable,
        committed: &mut Vec<CommittedTx>,
        errors: &mut Vec<ClientError>,
        fx: &mut Effects,
    ) {
        match then {
            AfterAbort::NextTx => self.next_tx(vars, committed, errors, fx),
            AfterAbort::RetryAttempt => {
                if self.attempt >= self.policy.max_attempts {
                    errors.push(ClientError::RetriesExhausted {
                        session: self.id,
                        tx_index: self.cur,
                        name: self.txs[self.cur].name.clone(),
                        attempts: self.attempt,
                    });
                    self.next_tx(vars, committed, errors, fx);
                    return;
                }
                let delay = self.policy.backoff_us(self.attempt, &mut self.rng);
                self.wake_gen += 1;
                fx.timers.push((delay, TimerKind::Wake(self.wake_gen)));
                self.phase = Phase::BackoffWait;
            }
        }
    }

    /// The coordinator's verdict on one of its own attempts, following the
    /// presumed-abort rule (see the module docs).
    fn decision_of(&self, txn: TxnId) -> Decision {
        if let Some(&ts) = self.decisions.get(&txn.attempt) {
            return Decision::Committed(ts);
        }
        let before_decision_point = matches!(
            self.phase,
            Phase::AwaitStartTs
                | Phase::AwaitRead { .. }
                | Phase::LockedWait { .. }
                | Phase::AwaitPrewrite { .. }
                | Phase::AwaitCommitTs
        );
        if txn.attempt == self.attempt_counter && before_decision_point {
            Decision::InProgress
        } else {
            Decision::Aborted
        }
    }

    /// Handles a reply from a server, or a recovering shard's
    /// [`Request::QueryDecision`] about an in-doubt attempt.
    pub fn on_message(
        &mut self,
        msg: Message,
        vars: &mut VarTable,
        committed: &mut Vec<CommittedTx>,
        errors: &mut Vec<ClientError>,
        fx: &mut Effects,
    ) {
        let reply = match msg.payload {
            Payload::Reply(reply) => reply,
            Payload::Request(Request::QueryDecision { txn }) => {
                // Answer directly: no timer and no outstanding entry — a
                // lost answer is harmless because the ordinary
                // commit/abort resends resolve the attempt regardless
                // (the query is an accelerator, not a liveness
                // requirement).
                if txn.client == self.id {
                    fx.sends.push((
                        msg.from,
                        Message {
                            from: self.addr(),
                            req_id: msg.req_id,
                            payload: Payload::Reply(Reply::Decision {
                                txn,
                                decision: self.decision_of(txn),
                            }),
                        },
                    ));
                }
                return;
            }
            Payload::Request(_) => return, // clients serve nothing else
        };
        // Duplicate or stale replies have no outstanding entry: ignore.
        let Some(pending) = self.outstanding.remove(&msg.req_id) else {
            return;
        };
        let from_shard = match pending.to {
            Addr::Shard(i) => Some(i),
            _ => None,
        };
        match (&mut self.phase, reply) {
            (Phase::AwaitStartTs, Reply::Ts(ts)) => {
                self.start_ts = ts;
                self.step_body(vars, committed, errors, fx);
            }
            (Phase::AwaitCommitTs, Reply::Ts(ts)) => {
                self.decide_commit(ts, vars, committed, errors, fx);
            }
            (Phase::AwaitRead { var }, Reply::ReadOk { value, writer }) => {
                let var = *var;
                self.events.push(ClientEvent::Read {
                    var,
                    value,
                    writer,
                    external: true,
                });
                self.step_body(vars, committed, errors, fx);
            }
            (Phase::AwaitRead { var }, Reply::ReadLocked) => {
                let var = *var;
                self.wake_gen += 1;
                fx.timers
                    .push((self.policy.locked_retry_us, TimerKind::Wake(self.wake_gen)));
                self.phase = Phase::LockedWait { var };
            }
            (Phase::AwaitRead { .. }, Reply::ReadConflict) => {
                self.abort_attempt(AfterAbort::RetryAttempt, vars, committed, errors, fx);
            }
            (
                Phase::AwaitPrewrite {
                    pending: waiting,
                    conflicted,
                },
                r @ (Reply::PrewriteOk | Reply::PrewriteConflict),
            ) => {
                if let Some(shard) = from_shard {
                    waiting.remove(&shard);
                }
                if r == Reply::PrewriteConflict {
                    *conflicted = true;
                }
                if waiting.is_empty() {
                    if *conflicted {
                        self.abort_attempt(AfterAbort::RetryAttempt, vars, committed, errors, fx);
                    } else {
                        self.phase = Phase::AwaitCommitTs;
                        self.send(Addr::Oracle, Request::CommitTs, false, fx);
                    }
                }
            }
            (Phase::Committing { pending: waiting }, Reply::CommitOk) => {
                if let Some(shard) = from_shard {
                    waiting.remove(&shard);
                }
                if waiting.is_empty() {
                    self.next_tx(vars, committed, errors, fx);
                }
            }
            (
                Phase::Aborting {
                    pending: waiting,
                    then,
                },
                Reply::AbortOk,
            ) => {
                let then = *then;
                if let Some(shard) = from_shard {
                    waiting.remove(&shard);
                }
                if waiting.is_empty() {
                    self.after_abort(then, vars, committed, errors, fx);
                }
            }
            // Anything else is a reply that raced a phase change (e.g. a
            // PrewriteOk arriving after a sibling conflict already aborted
            // the attempt): the outstanding map was cleared at the
            // transition, so this arm is unreachable in practice, but
            // dropping the reply is always safe.
            _ => {}
        }
    }

    /// Handles one of the client's own timers.
    pub fn on_timer(
        &mut self,
        kind: TimerKind,
        vars: &mut VarTable,
        committed: &mut Vec<CommittedTx>,
        errors: &mut Vec<ClientError>,
        fx: &mut Effects,
    ) {
        match kind {
            TimerKind::Rpc(req_id) => {
                let Some(pending) = self.outstanding.get_mut(&req_id) else {
                    return; // answered or cancelled in the meantime
                };
                pending.resends += 1;
                if !pending.unlimited && pending.resends > self.policy.max_rpc_resends {
                    // The RPC budget is exhausted: treat it like a conflict
                    // and retry the whole attempt.
                    self.abort_attempt(AfterAbort::RetryAttempt, vars, committed, errors, fx);
                    return;
                }
                self.rpc_resends += 1;
                let (to, req) = (pending.to, pending.req.clone());
                fx.sends.push((
                    to,
                    Message {
                        from: self.addr(),
                        req_id,
                        payload: Payload::Request(req),
                    },
                ));
                fx.timers
                    .push((self.policy.rpc_timeout_us, TimerKind::Rpc(req_id)));
            }
            TimerKind::Wake(gen) => {
                if gen != self.wake_gen {
                    return; // stale wake-up from an earlier phase
                }
                match &self.phase {
                    Phase::BackoffWait => self.start_attempt(vars, committed, errors, fx),
                    Phase::LockedWait { var } => {
                        let var = *var;
                        let snapshot = self.mode().snapshot_reads().then_some(self.start_ts);
                        let lock = self.mode().lock_reads();
                        self.phase = Phase::AwaitRead { var };
                        self.send(
                            Addr::Shard(self.shard_of(var)),
                            Request::Read {
                                txn: self.txn,
                                var,
                                snapshot,
                                lock,
                            },
                            false,
                            fx,
                        );
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Control-flow outcome of walking a block, mirroring
/// `txdpor_program::semantics`.
enum Flow {
    Fallthrough,
    Need(Var),
    Ended,
}

/// Replays a transaction body against the attempt's event log, extending
/// the log with writes and internal reads until an external read is needed
/// (or the body completes).
struct BodyWalker<'a> {
    events: &'a mut Vec<ClientEvent>,
    vars: &'a mut VarTable,
    env: Env,
    cursor: usize,
}

impl BodyWalker<'_> {
    fn last_logged_write(&self, var: Var) -> Option<Value> {
        self.events[..self.cursor]
            .iter()
            .rev()
            .find_map(|e| match e {
                ClientEvent::Write { var: x, value } if *x == var => Some(value.clone()),
                _ => None,
            })
    }

    fn walk(&mut self, body: &[Instr]) -> Result<Flow, EvalError> {
        for instr in body {
            match instr {
                Instr::Assign { local, expr } => {
                    let v = expr.eval(&self.env)?;
                    self.env.set(local, v);
                }
                Instr::Read { local, global } => {
                    let var = global.resolve(&self.env, self.vars)?;
                    if self.cursor < self.events.len() {
                        match &self.events[self.cursor] {
                            ClientEvent::Read { var: x, value, .. } if *x == var => {
                                let v = value.clone();
                                self.env.set(local, v);
                                self.cursor += 1;
                            }
                            other => unreachable!(
                                "client replay mismatch: expected read({var}), log has {other:?}"
                            ),
                        }
                    } else if let Some(v) = self.last_logged_write(var) {
                        self.events.push(ClientEvent::Read {
                            var,
                            value: v.clone(),
                            writer: None,
                            external: false,
                        });
                        self.env.set(local, v);
                        self.cursor += 1;
                    } else {
                        return Ok(Flow::Need(var));
                    }
                }
                Instr::Write { global, expr } => {
                    let var = global.resolve(&self.env, self.vars)?;
                    if self.cursor < self.events.len() {
                        match &self.events[self.cursor] {
                            ClientEvent::Write { var: x, .. } if *x == var => self.cursor += 1,
                            other => unreachable!(
                                "client replay mismatch: expected write({var}), log has {other:?}"
                            ),
                        }
                    } else {
                        let value = expr.eval(&self.env)?;
                        self.events.push(ClientEvent::Write { var, value });
                        self.cursor += 1;
                    }
                }
                Instr::Abort => return Ok(Flow::Ended),
                Instr::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let taken = if cond.eval(&self.env)?.truthy() {
                        then_branch
                    } else {
                        else_branch
                    };
                    match self.walk(taken)? {
                        Flow::Fallthrough => {}
                        other => return Ok(other),
                    }
                }
            }
        }
        Ok(Flow::Fallthrough)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mock clock: the tests accumulate the delays the policy asks for and
    /// assert on them directly — no real time is involved anywhere.
    #[test]
    fn backoff_grows_exponentially_and_respects_the_cap() {
        let policy = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut clock_us = 0u64;
        let mut previous = 0u64;
        for attempt in 1..=40 {
            let d = policy.backoff_us(attempt, &mut rng);
            assert!(d >= previous, "backoff must be monotone without jitter");
            assert!(
                d <= policy.cap_us,
                "attempt {attempt} exceeded the cap: {d}"
            );
            clock_us += d;
            previous = d;
        }
        // Without jitter the early doublings are exact.
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(policy.backoff_us(1, &mut rng), policy.base_us);
        assert_eq!(policy.backoff_us(2, &mut rng), policy.base_us * 2);
        assert_eq!(policy.backoff_us(3, &mut rng), policy.base_us * 4);
        // The mock clock never overflows even for absurd attempt counts.
        let mut rng = StdRng::seed_from_u64(1);
        clock_us += policy.backoff_us(u32::MAX, &mut rng);
        assert!(clock_us < u64::MAX / 2);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic_under_seed() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        let mut spread = std::collections::BTreeSet::new();
        for attempt in 1u32..=200 {
            let raw = policy
                .base_us
                .saturating_mul(
                    policy
                        .factor
                        .saturating_pow(attempt.saturating_sub(1).min(63)),
                )
                .min(policy.cap_us) as f64;
            let da = policy.backoff_us(attempt, &mut a);
            let db = policy.backoff_us(attempt, &mut b);
            assert_eq!(da, db, "same seed, same schedule");
            let lo = (raw * (1.0 - policy.jitter_frac) - 1.0) as u64;
            let hi = (raw * (1.0 + policy.jitter_frac) + 1.0) as u64;
            assert!(
                (lo..=hi).contains(&da),
                "attempt {attempt}: {da} not in [{lo}, {hi}]"
            );
            spread.insert(da);
        }
        assert!(spread.len() > 20, "jitter should actually vary the delays");
        // A different seed yields a different schedule.
        let mut c = StdRng::seed_from_u64(78);
        let differs = (1..=50).any(|k| {
            policy.backoff_us(k, &mut c) != {
                let mut a = StdRng::seed_from_u64(77);
                for _ in 1..k {
                    let _ = policy.backoff_us(1, &mut a);
                }
                policy.backoff_us(k, &mut a)
            }
        });
        assert!(differs);
    }

    #[test]
    fn gives_up_with_a_typed_error_after_max_attempts() {
        use txdpor_program::dsl::*;
        // One client, one transaction; every reply is thrown away, so every
        // attempt exhausts its RPC budget — the driver must give up with a
        // typed error (and must not panic or loop forever).
        let policy = RetryPolicy {
            max_attempts: 3,
            max_rpc_resends: 1,
            ..RetryPolicy::default()
        };
        let mut client = Client::new(
            0,
            vec![tx("t", vec![read("a", g("x")), write(g("x"), cint(1))])],
            vec![ProtocolMode::Snapshot],
            policy,
            1,
            42,
        );
        let mut vars = VarTable::new();
        let mut committed = Vec::new();
        let mut errors = Vec::new();
        // Mock clock: fire every scheduled timer in order, never deliver a
        // single reply.
        let mut timers: std::collections::VecDeque<TimerKind> = std::collections::VecDeque::new();
        let mut fx = Effects::default();
        client.start(&mut vars, &mut committed, &mut errors, &mut fx);
        timers.extend(fx.timers.drain(..).map(|(_, k)| k));
        let mut steps = 0;
        while let Some(kind) = timers.pop_front() {
            steps += 1;
            assert!(steps < 10_000, "driver must terminate");
            let mut fx = Effects::default();
            client.on_timer(kind, &mut vars, &mut committed, &mut errors, &mut fx);
            timers.extend(fx.timers.drain(..).map(|(_, k)| k));
        }
        assert!(client.is_done());
        assert!(committed.is_empty());
        assert_eq!(
            errors,
            vec![ClientError::RetriesExhausted {
                session: 0,
                tx_index: 0,
                name: "t".into(),
                attempts: 3,
            }]
        );
        assert_eq!(
            errors[0].to_string(),
            "session 0 gave up on transaction 0 (t) after 3 attempts"
        );
    }

    /// Sends a decision query for `(client 3, attempt)` and returns the
    /// answered decision, or `None` when the client stayed silent.
    fn query(c: &mut Client, from: u32, attempt: u32, vars: &mut VarTable) -> Option<Decision> {
        let (mut committed, mut errors) = (Vec::new(), Vec::new());
        let mut fx = Effects::default();
        c.on_message(
            Message {
                from: Addr::Shard(0),
                req_id: 99,
                payload: Payload::Request(Request::QueryDecision {
                    txn: TxnId {
                        client: from,
                        attempt,
                    },
                }),
            },
            vars,
            &mut committed,
            &mut errors,
            &mut fx,
        );
        assert!(committed.is_empty() && errors.is_empty());
        fx.sends.pop().map(|(to, m)| {
            assert_eq!(to, Addr::Shard(0), "answer goes back to the querier");
            match m.payload {
                Payload::Reply(Reply::Decision { txn, decision }) => {
                    assert_eq!(
                        txn,
                        TxnId {
                            client: from,
                            attempt
                        }
                    );
                    decision
                }
                other => panic!("expected a decision reply, got {other:?}"),
            }
        })
    }

    #[test]
    fn serves_coordinator_decisions_with_presumed_abort() {
        use txdpor_program::dsl::*;
        let mut c = Client::new(
            3,
            vec![tx("w", vec![write(g("x"), cint(1))])],
            vec![ProtocolMode::Snapshot],
            RetryPolicy::default(),
            1,
            7,
        );
        let mut vars = VarTable::new();
        let (mut committed, mut errors) = (Vec::new(), Vec::new());
        let deliver = |c: &mut Client, req_id: u64, reply: Reply, vars: &mut VarTable| {
            let (mut committed, mut errors) = (Vec::new(), Vec::new());
            let mut fx = Effects::default();
            c.on_message(
                Message {
                    from: Addr::Oracle,
                    req_id,
                    payload: Payload::Reply(reply),
                },
                vars,
                &mut committed,
                &mut errors,
                &mut fx,
            );
            assert!(errors.is_empty());
            committed
        };
        let mut fx = Effects::default();
        c.start(&mut vars, &mut committed, &mut errors, &mut fx);
        // Before the decision point, the current attempt is in progress…
        assert_eq!(query(&mut c, 3, 1, &mut vars), Some(Decision::InProgress));
        // …a query about someone else's attempt is not ours to answer…
        assert_eq!(query(&mut c, 2, 1, &mut vars), None);
        deliver(&mut c, 1, Reply::Ts(5), &mut vars); // start ts → prewrite (req 2)
        assert_eq!(query(&mut c, 3, 1, &mut vars), Some(Decision::InProgress));
        deliver(&mut c, 2, Reply::PrewriteOk, &mut vars); // → commit-ts (req 3)
        assert_eq!(query(&mut c, 3, 1, &mut vars), Some(Decision::InProgress));
        // …and receipt of the commit timestamp IS the decision point.
        let done = deliver(&mut c, 3, Reply::Ts(9), &mut vars);
        assert_eq!(done.len(), 1);
        assert_eq!(query(&mut c, 3, 1, &mut vars), Some(Decision::Committed(9)));
        deliver(&mut c, 4, Reply::CommitOk, &mut vars);
        assert!(c.is_done());
        // The decision record outlives the attempt; undecided past (or
        // unknown) attempts are presumed aborted.
        assert_eq!(query(&mut c, 3, 1, &mut vars), Some(Decision::Committed(9)));
        assert_eq!(query(&mut c, 3, 2, &mut vars), Some(Decision::Aborted));
    }

    #[test]
    fn body_walker_replays_internal_reads_and_branches() {
        use txdpor_program::dsl::*;
        let mut vars = VarTable::new();
        let mut events = Vec::new();
        let body = vec![
            write(g("x"), cint(5)),
            read("a", g("x")), // internal
            iff(
                eq(local("a"), cint(5)),
                vec![read("b", g("y"))], // external
            ),
        ];
        let mut w = BodyWalker {
            events: &mut events,
            vars: &mut vars,
            env: Env::new(),
            cursor: 0,
        };
        let y = match w.walk(&body).expect("walk succeeds on a served log") {
            Flow::Need(v) => v,
            _ => panic!("expected an external read"),
        };
        assert_eq!(vars.name(y), "y");
        assert_eq!(events.len(), 2, "write + internal read are logged");
        // Serve the read and re-walk: the log replays bit-identically.
        events.push(ClientEvent::Read {
            var: y,
            value: Value::Int(0),
            writer: None,
            external: true,
        });
        let snapshot = events.clone();
        let mut w = BodyWalker {
            events: &mut events,
            vars: &mut vars,
            env: Env::new(),
            cursor: 0,
        };
        assert!(matches!(
            w.walk(&body).expect("walk succeeds on a served log"),
            Flow::Fallthrough
        ));
        assert_eq!(events, snapshot);
    }
}
