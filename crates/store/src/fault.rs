//! Fault plans: the network adversary of a simulation run.
//!
//! A [`FaultPlan`] describes how the simulated network and the cluster's
//! nodes misbehave: baseline delivery delay, message drop / duplication /
//! reordering probabilities, timed node-pair partitions with heal, and
//! timed shard crash–restart windows. Together with the seed it fully
//! determines a run — the plan carries no state of its own, all randomness
//! comes from the simulation's seeded RNG.
//!
//! Plans parse from the command line ([`FromStr`]) either as a preset name
//! (`none`, `jitter`, `lossy`, `chaos`, `partitions`, `crashy`,
//! `crash-chaos`) or as a comma-separated spec:
//!
//! ```text
//! delay=5..400,drop=0.05,dup=0.05,reorder=0.1,spike=2000,part=0-1@1000..8000,crash=0@2000..12000
//! ```
//!
//! `part` and `crash` may repeat to declare several partitions / crash
//! windows. A `crash=n@from..until` clause takes shard `n` down at `from`
//! (its volatile state is lost) and restarts it at `until` (it recovers
//! from its write-ahead log — see [`crate::server`]). Two crash windows
//! for the same shard must not overlap: a crashed node cannot crash again
//! before it restarts. Unknown keys and malformed values produce a
//! readable [`ParseFaultError`], which the `simulate` binary surfaces
//! without a backtrace.

use std::fmt;
use std::str::FromStr;

/// A timed partition between two nodes: messages between node indexes `a`
/// and `b` (in either direction) are dropped while `from_us <= now <
/// until_us`. Node indexes are interpreted modulo the deployment's node
/// count, so plans written for small clusters apply to any topology.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// First node index.
    pub a: u32,
    /// Second node index.
    pub b: u32,
    /// Start of the partition (microseconds of simulated time, inclusive).
    pub from_us: u64,
    /// End of the partition (exclusive) — the heal point.
    pub until_us: u64,
}

/// A timed crash–restart window of one storage shard: the shard is down
/// (its volatile state lost, every message to it dropped) while
/// `from_us <= now < until_us`, and recovers from its write-ahead log at
/// `until_us`. Shard indexes are interpreted modulo the deployment's shard
/// count, so preset plans written for small clusters apply to any
/// topology; explicitly-written specs are additionally validated against
/// the actual cluster by [`FaultPlan::validate_cluster`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Crash {
    /// Index of the crashing shard.
    pub node: u32,
    /// Start of the outage (microseconds of simulated time, inclusive).
    pub from_us: u64,
    /// End of the outage (exclusive) — the restart/recovery point.
    pub until_us: u64,
}

impl Crash {
    fn overlaps(&self, other: &Crash) -> bool {
        self.from_us < other.until_us && other.from_us < self.until_us
    }
}

/// A fault-injection plan for the simulated network.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Uniform per-message delivery delay range in microseconds
    /// (`min..=max`).
    pub delay_us: (u64, u64),
    /// Probability of dropping a message outright.
    pub drop: f64,
    /// Probability of delivering a message twice (the duplicate gets an
    /// independent delay).
    pub dup: f64,
    /// Probability of a reordering spike: the message's delay is inflated
    /// by up to [`FaultPlan::reorder_extra_us`], letting later messages
    /// overtake it.
    pub reorder: f64,
    /// Maximum extra delay of a reordering spike, in microseconds.
    pub reorder_extra_us: u64,
    /// Timed node-pair partitions.
    pub partitions: Vec<Partition>,
    /// Timed shard crash–restart windows.
    pub crashes: Vec<Crash>,
}

impl FaultPlan {
    /// The benign network: small constant-ish delay, no faults.
    pub fn none() -> Self {
        FaultPlan {
            delay_us: (5, 50),
            drop: 0.0,
            dup: 0.0,
            reorder: 0.0,
            reorder_extra_us: 0,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Wide delay jitter, no loss: delivery order is scrambled but every
    /// message arrives exactly once.
    pub fn jitter() -> Self {
        FaultPlan {
            delay_us: (5, 800),
            drop: 0.0,
            dup: 0.0,
            reorder: 0.3,
            reorder_extra_us: 2_000,
            ..FaultPlan::none()
        }
    }

    /// A lossy network: moderate drop and duplication on top of jitter.
    pub fn lossy() -> Self {
        FaultPlan {
            delay_us: (5, 400),
            drop: 0.05,
            dup: 0.05,
            reorder: 0.1,
            reorder_extra_us: 1_000,
            ..FaultPlan::none()
        }
    }

    /// Everything at once: heavy jitter, drop, duplication and reordering.
    pub fn chaos() -> Self {
        FaultPlan {
            delay_us: (5, 1_000),
            drop: 0.10,
            dup: 0.10,
            reorder: 0.25,
            reorder_extra_us: 3_000,
            ..FaultPlan::none()
        }
    }

    /// Shard crash–restart windows over an otherwise lossy network. The
    /// windows are time-disjoint, so they stay non-overlapping on any
    /// cluster size even after the shard indexes reduce modulo the shard
    /// count.
    pub fn crashy() -> Self {
        FaultPlan {
            crashes: vec![
                Crash {
                    node: 0,
                    from_us: 2_000,
                    until_us: 12_000,
                },
                Crash {
                    node: 1,
                    from_us: 15_000,
                    until_us: 23_000,
                },
            ],
            ..FaultPlan::lossy()
        }
    }

    /// Staggered crash–restart windows of every default shard on top of
    /// the full chaos network (heavy jitter, drop, duplication,
    /// reordering). Windows are time-disjoint; see [`FaultPlan::crashy`].
    pub fn crash_chaos() -> Self {
        FaultPlan {
            crashes: vec![
                Crash {
                    node: 0,
                    from_us: 1_000,
                    until_us: 9_000,
                },
                Crash {
                    node: 1,
                    from_us: 10_000,
                    until_us: 18_000,
                },
                Crash {
                    node: 2,
                    from_us: 19_000,
                    until_us: 27_000,
                },
            ],
            ..FaultPlan::chaos()
        }
    }

    /// Timed partitions (with heal) over an otherwise lossy network.
    pub fn partitions() -> Self {
        FaultPlan {
            partitions: vec![
                Partition {
                    a: 0,
                    b: 1,
                    from_us: 2_000,
                    until_us: 20_000,
                },
                Partition {
                    a: 1,
                    b: 2,
                    from_us: 30_000,
                    until_us: 45_000,
                },
            ],
            ..FaultPlan::lossy()
        }
    }

    /// The preset names accepted by the [`FromStr`] parser.
    pub const PRESETS: [&'static str; 7] = [
        "none",
        "jitter",
        "lossy",
        "chaos",
        "partitions",
        "crashy",
        "crash-chaos",
    ];

    /// Looks up a preset by name.
    pub fn preset(name: &str) -> Option<FaultPlan> {
        match name {
            "none" => Some(FaultPlan::none()),
            "jitter" => Some(FaultPlan::jitter()),
            "lossy" => Some(FaultPlan::lossy()),
            "chaos" => Some(FaultPlan::chaos()),
            "partitions" => Some(FaultPlan::partitions()),
            "crashy" => Some(FaultPlan::crashy()),
            "crash-chaos" => Some(FaultPlan::crash_chaos()),
            _ => None,
        }
    }

    /// Whether the pair of node indexes is partitioned at simulated time
    /// `now_us` (indexes are reduced modulo `nodes` first).
    pub fn partitioned(&self, a: u32, b: u32, now_us: u64, nodes: u32) -> bool {
        debug_assert!(nodes > 0);
        let (a, b) = (a % nodes, b % nodes);
        self.partitions.iter().any(|p| {
            let (pa, pb) = (p.a % nodes, p.b % nodes);
            ((pa == a && pb == b) || (pa == b && pb == a))
                && (p.from_us..p.until_us).contains(&now_us)
        })
    }

    /// Whether shard `shard` is crashed at simulated time `now_us` (crash
    /// node indexes are reduced modulo `num_shards` first, like partition
    /// endpoints).
    pub fn crashed(&self, shard: u32, now_us: u64, num_shards: u32) -> bool {
        debug_assert!(num_shards > 0);
        self.crashes
            .iter()
            .any(|c| c.node % num_shards == shard && (c.from_us..c.until_us).contains(&now_us))
    }

    /// Validates an explicitly-written plan against the actual cluster:
    /// every `crash=` clause must name an existing shard (`node <
    /// num_shards`). Presets are exempt — their indexes reduce modulo the
    /// shard count by design — so callers (the `simulate` binary) apply
    /// this only to non-preset specs. The error lists the accepted
    /// grammar.
    pub fn validate_cluster(&self, num_shards: u32) -> Result<(), String> {
        for c in &self.crashes {
            if c.node >= num_shards {
                return Err(format!(
                    "crash clause names unknown shard {}: the cluster has {num_shards} shard(s) \
                     (0..={}); expected crash=<node>@<from>..<until> with node < shards",
                    c.node,
                    num_shards - 1
                ));
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delay={}..{},drop={},dup={},reorder={},spike={}",
            self.delay_us.0,
            self.delay_us.1,
            self.drop,
            self.dup,
            self.reorder,
            self.reorder_extra_us
        )?;
        for p in &self.partitions {
            write!(f, ",part={}-{}@{}..{}", p.a, p.b, p.from_us, p.until_us)?;
        }
        for c in &self.crashes {
            write!(f, ",crash={}@{}..{}", c.node, c.from_us, c.until_us)?;
        }
        Ok(())
    }
}

/// Error of parsing a [`FaultPlan`] from the command line; explains what was
/// rejected and what the parser accepts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseFaultError {
    input: String,
    reason: String,
}

impl ParseFaultError {
    fn new(input: &str, reason: impl Into<String>) -> Self {
        ParseFaultError {
            input: input.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault plan {:?}: {}; expected a preset ({}) or a spec like \
             \"delay=5..400,drop=0.05,dup=0.05,reorder=0.1,spike=2000,\
             part=0-1@1000..8000,crash=0@2000..12000\"",
            self.input,
            self.reason,
            FaultPlan::PRESETS.join(", "),
        )
    }
}

impl std::error::Error for ParseFaultError {}

impl FromStr for FaultPlan {
    type Err = ParseFaultError;

    /// Parses a preset name or a `key=value` spec (see the module docs).
    /// Spec keys start from the `none` baseline, so `"drop=0.5"` alone is a
    /// valid plan.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(plan) = FaultPlan::preset(s) {
            return Ok(plan);
        }
        if s.is_empty() {
            return Err(ParseFaultError::new(s, "empty spec"));
        }
        let mut plan = FaultPlan::none();
        for item in s.split(',') {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| ParseFaultError::new(s, format!("missing '=' in {item:?}")))?;
            let prob = |what: &str| -> Result<f64, ParseFaultError> {
                let p: f64 = value.parse().map_err(|_| {
                    ParseFaultError::new(s, format!("{what} {value:?} is not a number"))
                })?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(ParseFaultError::new(
                        s,
                        format!("{what} {value:?} must be in [0, 1]"),
                    ));
                }
                Ok(p)
            };
            match key {
                "delay" => {
                    let (lo, hi) = value.split_once("..").ok_or_else(|| {
                        ParseFaultError::new(s, format!("delay {value:?} must be min..max"))
                    })?;
                    let lo: u64 = lo.parse().map_err(|_| {
                        ParseFaultError::new(s, format!("delay start {lo:?} is not an integer"))
                    })?;
                    let hi: u64 = hi.parse().map_err(|_| {
                        ParseFaultError::new(s, format!("delay end {hi:?} is not an integer"))
                    })?;
                    if lo > hi {
                        return Err(ParseFaultError::new(
                            s,
                            format!("delay range {lo}..{hi} is empty"),
                        ));
                    }
                    plan.delay_us = (lo, hi);
                }
                "drop" => plan.drop = prob("drop probability")?,
                "dup" => plan.dup = prob("dup probability")?,
                "reorder" => plan.reorder = prob("reorder probability")?,
                "spike" => {
                    plan.reorder_extra_us = value.parse().map_err(|_| {
                        ParseFaultError::new(s, format!("spike {value:?} is not an integer"))
                    })?;
                }
                "part" => {
                    let err = || {
                        ParseFaultError::new(s, format!("part {value:?} must be a-b@from..until"))
                    };
                    let (pair, window) = value.split_once('@').ok_or_else(err)?;
                    let (a, b) = pair.split_once('-').ok_or_else(err)?;
                    let (from, until) = window.split_once("..").ok_or_else(err)?;
                    let p = Partition {
                        a: a.parse().map_err(|_| err())?,
                        b: b.parse().map_err(|_| err())?,
                        from_us: from.parse().map_err(|_| err())?,
                        until_us: until.parse().map_err(|_| err())?,
                    };
                    if p.from_us >= p.until_us {
                        return Err(ParseFaultError::new(
                            s,
                            format!("partition window {}..{} is empty", p.from_us, p.until_us),
                        ));
                    }
                    plan.partitions.push(p);
                }
                "crash" => {
                    let err = || {
                        ParseFaultError::new(s, format!("crash {value:?} must be node@from..until"))
                    };
                    let (node, window) = value.split_once('@').ok_or_else(err)?;
                    let (from, until) = window.split_once("..").ok_or_else(err)?;
                    let c = Crash {
                        node: node.parse().map_err(|_| err())?,
                        from_us: from.parse().map_err(|_| err())?,
                        until_us: until.parse().map_err(|_| err())?,
                    };
                    if c.from_us >= c.until_us {
                        return Err(ParseFaultError::new(
                            s,
                            format!("crash window {}..{} is empty", c.from_us, c.until_us),
                        ));
                    }
                    if let Some(prev) = plan
                        .crashes
                        .iter()
                        .find(|p| p.node == c.node && p.overlaps(&c))
                    {
                        return Err(ParseFaultError::new(
                            s,
                            format!(
                                "crash windows {}..{} and {}..{} of shard {} overlap — a crashed \
                                 node cannot crash again before it restarts",
                                prev.from_us, prev.until_us, c.from_us, c.until_us, c.node
                            ),
                        ));
                    }
                    plan.crashes.push(c);
                }
                other => {
                    return Err(ParseFaultError::new(s, format!("unknown key {other:?}")));
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_by_name() {
        for name in FaultPlan::PRESETS {
            let plan: FaultPlan = name.parse().expect("preset names parse");
            assert_eq!(Some(plan), FaultPlan::preset(name));
        }
        assert_eq!(FaultPlan::default(), FaultPlan::none());
    }

    #[test]
    fn spec_round_trips_through_display() {
        let specs = [
            "delay=5..400,drop=0.05,dup=0.05,reorder=0.1,spike=2000",
            "drop=0.5",
            "delay=0..0,part=0-1@1000..8000,part=1-2@9000..9001",
            "crash=0@2000..12000,crash=1@500..1500,crash=0@12000..13000",
            "delay=1..9,drop=0.25,part=0-2@5..10,crash=2@1..2",
        ];
        for s in specs {
            let plan: FaultPlan = s.parse().expect("listed specs are well-formed");
            let redisplayed: FaultPlan =
                plan.to_string().parse().expect("displayed form re-parses");
            assert_eq!(plan, redisplayed, "{s}");
        }
    }

    #[test]
    fn malformed_specs_are_rejected_readably() {
        for (bad, needle) in [
            ("", "empty spec"),
            ("drop", "missing '='"),
            ("drop=1.5", "must be in [0, 1]"),
            ("drop=x", "is not a number"),
            ("delay=10", "must be min..max"),
            ("delay=9..3", "is empty"),
            ("spike=abc", "is not an integer"),
            ("part=0-1", "must be a-b@from..until"),
            ("part=0-1@9..3", "is empty"),
            ("crash=0", "must be node@from..until"),
            ("crash=0@5000", "must be node@from..until"),
            ("crash=x@1..2", "must be node@from..until"),
            ("crash=0@9..3", "is empty"),
            ("crash=0@5..5", "is empty"),
            ("crash=0@0..5000,crash=0@4000..6000", "overlap"),
            ("warp=0.1", "unknown key"),
        ] {
            let err = bad.parse::<FaultPlan>().unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "{bad}: {msg}");
            assert!(msg.contains("expected a preset"), "{bad}: {msg}");
        }
    }

    #[test]
    fn partition_windows_and_modulo() {
        let plan: FaultPlan = "part=0-1@1000..8000"
            .parse()
            .expect("well-formed partition spec");
        assert!(plan.partitioned(0, 1, 1000, 4));
        assert!(plan.partitioned(1, 0, 7999, 4));
        assert!(!plan.partitioned(0, 1, 8000, 4));
        assert!(!plan.partitioned(0, 1, 999, 4));
        assert!(!plan.partitioned(0, 2, 5000, 4));
        // Node indexes reduce modulo the cluster size.
        assert!(plan.partitioned(0, 3, 5000, 2));
    }

    #[test]
    fn crash_windows_and_modulo() {
        let plan: FaultPlan = "crash=1@1000..8000"
            .parse()
            .expect("well-formed crash spec");
        assert!(plan.crashed(1, 1000, 3));
        assert!(plan.crashed(1, 7999, 3));
        assert!(!plan.crashed(1, 8000, 3), "restart point is up again");
        assert!(!plan.crashed(1, 999, 3));
        assert!(!plan.crashed(0, 5000, 3));
        // Crash node indexes reduce modulo the shard count.
        assert!(plan.crashed(0, 5000, 1));
        // Same-shard windows back to back (no overlap) are fine.
        let plan: FaultPlan = "crash=0@0..10,crash=0@10..20"
            .parse()
            .expect("back-to-back windows are well-formed");
        assert!(plan.crashed(0, 9, 2) && plan.crashed(0, 10, 2));
        // Overlapping windows on *different* shards are fine.
        assert!("crash=0@0..10,crash=1@5..15".parse::<FaultPlan>().is_ok());
    }

    #[test]
    fn cluster_validation_rejects_unknown_shards() {
        let plan: FaultPlan = "crash=7@1000..2000"
            .parse()
            .expect("parsing is cluster-agnostic; validation is separate");
        let err = plan.validate_cluster(3).unwrap_err();
        assert!(err.contains("unknown shard 7"), "{err}");
        assert!(err.contains("crash=<node>@<from>..<until>"), "{err}");
        assert!(plan.validate_cluster(8).is_ok());
        // Presets stay valid on any cluster only via the modulo rule; by
        // construction their windows are time-disjoint so reduction can
        // never make a shard crash while crashed.
        for name in FaultPlan::PRESETS {
            let plan = FaultPlan::preset(name).expect("every listed preset is defined");
            for shards in 1..=4u32 {
                for c in &plan.crashes {
                    let overlapping = plan.crashes.iter().any(|other| {
                        other != c && other.node % shards == c.node % shards && other.overlaps(c)
                    });
                    assert!(!overlapping, "{name}: overlap at {shards} shards");
                }
            }
        }
    }
}
