//! Turns the committed execution of a simulation into a native
//! [`History`] plus the deployment's claimed [`LevelSpec`], ready for
//! `check_witnessed`.
//!
//! Recording happens in two passes over the commit-decision log:
//!
//! 1. every [`CommittedTx`] becomes a history transaction (begin, its
//!    reads and writes, commit) in commit-decision order, assigning dense
//!    `TxId`s and remembering which attempt each external read observed;
//! 2. the write-read relation is filled in by mapping each observed
//!    attempt to its recorded `TxId` (`None`, i.e. an initial version,
//!    maps to [`TxId::INIT`]).
//!
//! Internal reads (a transaction observing its own earlier write) get no
//! `wr` edge, exactly like the repo's operational semantics
//! (`txdpor_program::semantics`). The claimed spec is built positionally:
//! the recorded index of a transaction within its session is the index the
//! checker's `LevelSpec` overrides address.
//!
//! In-doubt transactions are classified by construction: a [`CommittedTx`]
//! entry is pushed exactly at the coordinator's commit decision point
//! (receipt of the commit timestamp), so an attempt that crashed or was
//! presumed-aborted before deciding never reaches the recorder and the
//! emitted `History` reflects only what actually committed. The one way a
//! broken recovery path could leak into a history is a read observing a
//! version installed by a never-decided attempt — [`record`] treats that
//! as a hard error (panic) rather than silently emitting a dangling `wr`
//! edge, so resurrected writes cannot masquerade as committed state.

use std::collections::BTreeMap;

use txdpor_history::{Event, EventId, EventKind, History, LevelSpec, SessionId, TxId, Value, Var};

use crate::client::{ClientEvent, CommittedTx};
use crate::deploy::Deployment;
use crate::msg::TxnId;

/// Records the committed execution as a history and derives the
/// deployment's claimed spec for it.
///
/// `committed` must be in commit-decision order (as produced by the
/// simulation); `init` is the program's interned initial assignment.
pub fn record(
    committed: &[CommittedTx],
    init: Vec<(Var, Value)>,
    deployment: &Deployment,
) -> (History, LevelSpec) {
    let mut h = History::new(init);
    let mut next_event = 0u32;
    let mut fresh = move || {
        next_event += 1;
        EventId(next_event)
    };
    let mut tx_of_attempt: BTreeMap<TxnId, TxId> = BTreeMap::new();
    // Deferred wr edges: (read event, observed attempt).
    let mut wr: Vec<(EventId, Option<TxnId>)> = Vec::new();
    let mut spec = LevelSpec::uniform(deployment.default_claimed());

    for (i, ct) in committed.iter().enumerate() {
        let id = TxId(i as u32 + 1);
        tx_of_attempt.insert(ct.txn, id);
        let s = SessionId(ct.session);
        let recorded_index = h.session_txs(s).len();
        h.begin_transaction(
            s,
            id,
            ct.program_index,
            Event::new(fresh(), EventKind::Begin),
        );
        for ev in &ct.events {
            match ev {
                ClientEvent::Read {
                    var,
                    value: _,
                    writer,
                    external,
                } => {
                    let e = Event::new(fresh(), EventKind::Read(*var));
                    let eid = e.id;
                    h.append_event(s, e);
                    if *external {
                        wr.push((eid, *writer));
                    }
                }
                ClientEvent::Write { var, value } => {
                    h.append_event(
                        s,
                        Event::new(fresh(), EventKind::Write(*var, value.clone())),
                    );
                }
            }
        }
        h.append_event(s, Event::new(fresh(), EventKind::Commit));
        let claimed = deployment.claimed_level(ct.mode);
        if claimed != deployment.default_claimed() {
            spec = spec.with_override(ct.session, recorded_index as u32, claimed);
        }
    }

    for (read, observed) in wr {
        let writer = match observed {
            None => TxId::INIT,
            Some(attempt) => *tx_of_attempt.get(&attempt).unwrap_or_else(|| {
                // Shards only serve committed versions, so a dangling
                // attempt id means the recorder itself lost a commit.
                unreachable!("read observed attempt {attempt:?} that never committed")
            }),
        };
        h.set_wr(read, writer);
    }

    (h, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::ProtocolMode;
    use txdpor_history::IsolationLevel;

    fn committed(
        session: u32,
        program_index: usize,
        name: &str,
        attempt: u32,
        mode: ProtocolMode,
        events: Vec<ClientEvent>,
    ) -> CommittedTx {
        CommittedTx {
            session,
            program_index,
            name: name.into(),
            txn: TxnId {
                client: session,
                attempt,
            },
            mode,
            events,
        }
    }

    #[test]
    fn records_wr_edges_and_positional_spec() {
        let x = Var(0);
        // Session 0 writes x; session 1 reads it externally from that
        // attempt, then re-reads its own write internally.
        let writer = committed(
            0,
            0,
            "w",
            3, // retried attempts leave gaps — must not matter
            ProtocolMode::Serializable,
            vec![ClientEvent::Write {
                var: x,
                value: Value::Int(7),
            }],
        );
        let reader = committed(
            1,
            0,
            "r",
            1,
            ProtocolMode::Causal,
            vec![
                ClientEvent::Read {
                    var: x,
                    value: Value::Int(7),
                    writer: Some(TxnId {
                        client: 0,
                        attempt: 3,
                    }),
                    external: true,
                },
                ClientEvent::Write {
                    var: x,
                    value: Value::Int(8),
                },
                ClientEvent::Read {
                    var: x,
                    value: Value::Int(8),
                    writer: None,
                    external: false,
                },
            ],
        );
        let deployment = Deployment::mixed(vec![("w".into(), ProtocolMode::Serializable)]);
        let (h, spec) = record(&[writer, reader], vec![(x, Value::Int(0))], &deployment);

        assert_eq!(h.session_txs(SessionId(0)), &[TxId(1)]);
        assert_eq!(h.session_txs(SessionId(1)), &[TxId(2)]);
        // Exactly one wr edge: the external read; the internal one has none.
        assert_eq!(h.wr_count(), 1);
        // Positional claims: session 0's first recorded tx is SER, the
        // default stays PC.
        assert_eq!(spec.level_of(0, 0), IsolationLevel::Serializability);
        assert_eq!(spec.level_of(1, 0), IsolationLevel::PrefixConsistency);
        // The recorded history satisfies its claimed spec (trivially here).
        assert!(spec.satisfies(&h));
    }

    #[test]
    #[should_panic(expected = "never committed")]
    fn reads_observing_uncommitted_attempts_are_a_hard_error() {
        let x = Var(0);
        // The read claims to have observed attempt (client 5, attempt 9),
        // which is not in the commit-decision log: if recovery ever served
        // a resurrected, never-decided write, this is where it would
        // surface — and it must be loud, not a silent wr edge to nowhere.
        let reader = committed(
            0,
            0,
            "r",
            1,
            ProtocolMode::Snapshot,
            vec![ClientEvent::Read {
                var: x,
                value: Value::Int(3),
                writer: Some(TxnId {
                    client: 5,
                    attempt: 9,
                }),
                external: true,
            }],
        );
        record(&[reader], vec![(x, Value::Int(0))], &Deployment::si());
    }

    #[test]
    fn init_reads_map_to_the_init_transaction() {
        let x = Var(0);
        let reader = committed(
            0,
            0,
            "r",
            1,
            ProtocolMode::Snapshot,
            vec![ClientEvent::Read {
                var: x,
                value: Value::Int(0),
                writer: None,
                external: true,
            }],
        );
        let (h, spec) = record(&[reader], vec![(x, Value::Int(0))], &Deployment::si());
        assert_eq!(h.wr_count(), 1);
        assert_eq!(spec.as_uniform(), Some(IsolationLevel::SnapshotIsolation));
        assert!(spec.satisfies(&h));
    }
}
