//! Server nodes: MVCC shards (with a simulated write-ahead log and
//! crash–restart recovery) and the timestamp oracle.
//!
//! Each shard owns the version chains and lock table of its slice of the
//! key space and is driven purely by messages. Handlers are **idempotent**
//! — per-attempt state (`TxnState`) is kept forever (simulation runs are
//! bounded), so duplicated, reordered or late messages can never resurrect
//! a lock or re-install a version:
//!
//! * a `Read` for an attempt already decided is served without locking;
//! * a duplicate `Prewrite` of a prewritten/committed attempt is `Ok`
//!   without re-locking; after an abort it is `Conflict`;
//! * `Commit` and `Abort` are no-ops the second time.
//!
//! The correctness invariant the snapshot modes rely on: a version with
//! `ts <= s` is either installed or guarded by an exclusive lock with
//! `start_ts <= s` at the moment a snapshot-`s` read arrives (locks are
//! taken at prewrite, before the commit timestamp is drawn, and the oracle
//! is monotone).
//!
//! # WAL contract and recovery
//!
//! Every state transition is logged to the shard's [`Wal`] *in the same
//! atomic handler step* that applies it in memory — prewrites (with their
//! buffered writes), shared read-lock intents, and commit/abort decisions
//! (commit records inline the installed writes). [`Shard::crash`] discards
//! all volatile state but keeps the log; [`Shard::restart`] rebuilds
//! version chains, the lock table and per-attempt state by replaying it.
//! Replay reuses the same guarded apply primitives as the live handlers,
//! so it is idempotent by construction: a lock can only come back for an
//! attempt that is still undecided in the log, and a version can only be
//! installed once per attempt.
//!
//! Recovery leaves prewritten-but-undecided attempts *in doubt*: their
//! exclusive locks are held (preserving the snapshot-read invariant above)
//! and a [`Request::QueryDecision`] is sent to each attempt's coordinator.
//! The coordinator answers from its decision record — commit timestamp if
//! the attempt committed, otherwise **presumed abort** once it has moved
//! on ([`crate::msg::Decision`]). Losing these messages only delays
//! resolution: the ordinary commit/abort resends decide the attempt too.
//!
//! A shard built with durability off ([`Shard::with_durability`]) models
//! the deliberately broken `no-wal` deployment: commit/abort *decisions*
//! still reach the log, but prewrites and lock intents are volatile — a
//! crash forgets in-flight writers, so first-committer-wins can be
//! violated after restart (two writers of the same key both commit). The
//! end-to-end pipeline exists to catch exactly that.

use std::collections::{BTreeMap, BTreeSet};

use txdpor_history::{Value, Var};

use crate::msg::{Addr, Decision, Message, Payload, Reply, Request, TxnId};

/// The timestamp oracle: a monotone counter serving start and commit
/// timestamps. Timestamp 0 is reserved for initial versions.
#[derive(Debug, Default)]
pub struct Oracle {
    next: u64,
}

impl Oracle {
    /// Creates the oracle; the first timestamp served is 1.
    pub fn new() -> Self {
        Oracle { next: 0 }
    }

    /// Handles a timestamp request, replying to `from`.
    pub fn handle(&mut self, from: Addr, req_id: u64, req: &Request) -> Vec<(Addr, Message)> {
        match req {
            Request::StartTs | Request::CommitTs => {
                self.next += 1;
                vec![(
                    from,
                    Message {
                        from: Addr::Oracle,
                        req_id,
                        payload: Payload::Reply(Reply::Ts(self.next)),
                    },
                )]
            }
            // The router only ever addresses the oracle with Ts requests.
            other => unreachable!("oracle received a non-timestamp request: {other:?}"),
        }
    }
}

/// One installed version of a variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Version {
    /// Commit timestamp of the version (0 for the initial version).
    pub ts: u64,
    /// The stored value.
    pub value: Value,
    /// The attempt that installed it (`None` for init).
    pub writer: Option<TxnId>,
}

/// The lock state of one variable.
#[derive(Clone, Debug, Default)]
struct Lock {
    /// Exclusive (prewrite) holder, with its start timestamp.
    exclusive: Option<(TxnId, u64)>,
    /// Shared (serializable read) holders.
    shared: BTreeSet<TxnId>,
}

impl Lock {
    fn is_free(&self) -> bool {
        self.exclusive.is_none() && self.shared.is_empty()
    }
}

/// Per-attempt state retained by a shard.
#[derive(Clone, Debug, PartialEq)]
enum TxnState {
    /// Prewritten: the buffered writes await a commit timestamp.
    Prewritten(Vec<(Var, Value)>),
    /// Committed (terminal).
    Committed,
    /// Aborted (terminal).
    Aborted,
}

/// One durable record of a shard's write-ahead log. Records are appended
/// in the same atomic handler step as the in-memory state change they
/// describe, and replayed in order by [`Shard::restart`].
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A shared read-lock intent of a locking (serializable-mode) read.
    ReadLock {
        /// The locking attempt.
        txn: TxnId,
        /// The locked variable.
        var: Var,
    },
    /// A successful prewrite: exclusive locks taken, writes buffered.
    Prewrite {
        /// The prewriting attempt.
        txn: TxnId,
        /// Its start timestamp (lock metadata for snapshot-read blocking).
        start_ts: u64,
        /// The buffered writes destined for this shard.
        writes: Vec<(Var, Value)>,
    },
    /// A commit decision, with the versions it installs inlined so replay
    /// never depends on a prewrite record (the volatile `no-wal` shard
    /// logs commits but not prewrites).
    Commit {
        /// The committed attempt.
        txn: TxnId,
        /// Version timestamp of the installed writes.
        commit_ts: u64,
        /// The installed writes (empty for read-only participants).
        writes: Vec<(Var, Value)>,
    },
    /// An abort decision.
    Abort {
        /// The aborted attempt.
        txn: TxnId,
    },
}

/// The simulated write-ahead log of one shard: an append-only record list
/// that survives [`Shard::crash`].
pub type Wal = Vec<WalRecord>;

/// Recovery observability counters of one shard, aggregated into
/// [`SimStats`](crate::simulation::SimStats).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// WAL records replayed across all restarts of this shard.
    pub wal_replayed: u64,
    /// In-doubt attempts committed via a coordinator decision reply.
    pub indoubt_committed: u64,
    /// In-doubt attempts resolved by presumed abort via a decision reply.
    pub indoubt_aborted: u64,
}

/// A storage shard: version chains, lock table and per-attempt state for
/// its slice of the key space, plus the write-ahead log those are
/// rebuilt from after a crash.
#[derive(Debug)]
pub struct Shard {
    id: u32,
    /// Version chains, oldest first (insertion keeps `ts` sorted).
    versions: BTreeMap<Var, Vec<Version>>,
    locks: BTreeMap<Var, Lock>,
    txns: BTreeMap<TxnId, TxnState>,
    /// Initial values of the key space (vars absent here start at `Int(0)`).
    init: BTreeMap<Var, Value>,
    /// The write-ahead log; survives crashes.
    wal: Wal,
    /// Whether prewrites and lock intents reach the WAL. Decisions are
    /// always logged; see the module docs for the `no-wal` model.
    durable: bool,
    /// Request ids of shard-originated [`Request::QueryDecision`]s.
    next_req: u64,
    /// Recovery observability counters; survive crashes (they describe the
    /// run, not the node).
    recovery: RecoveryStats,
}

impl Shard {
    /// Creates shard `id` over the given initial values, with a durable
    /// write-ahead log.
    pub fn new(id: u32, init: BTreeMap<Var, Value>) -> Self {
        Shard::with_durability(id, init, true)
    }

    /// Creates shard `id` with explicit durability: `durable = false`
    /// models the broken `no-wal` node that loses undecided prewrite
    /// state (and shared-lock intents) on crash.
    pub fn with_durability(id: u32, init: BTreeMap<Var, Value>, durable: bool) -> Self {
        Shard {
            id,
            versions: BTreeMap::new(),
            locks: BTreeMap::new(),
            txns: BTreeMap::new(),
            init,
            wal: Vec::new(),
            durable,
            next_req: 0,
            recovery: RecoveryStats::default(),
        }
    }

    /// Recovery observability counters of this shard.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// This shard's index in the cluster.
    pub fn id(&self) -> u32 {
        self.id
    }

    fn reply(&self, to: Addr, req_id: u64, reply: Reply) -> (Addr, Message) {
        (
            to,
            Message {
                from: Addr::Shard(self.id),
                req_id,
                payload: Payload::Reply(reply),
            },
        )
    }

    /// The version chain of `var`, lazily seeded with the initial version.
    fn chain(&mut self, var: Var) -> &mut Vec<Version> {
        let init = self.init.get(&var).cloned().unwrap_or_default();
        self.versions.entry(var).or_insert_with(|| {
            vec![Version {
                ts: 0,
                value: init,
                writer: None,
            }]
        })
    }

    /// The latest version with `ts <= snapshot` (the initial version is
    /// always present, so this never fails).
    fn read_at(&mut self, var: Var, snapshot: u64) -> Version {
        self.chain(var)
            .iter()
            .rev()
            .find(|v| v.ts <= snapshot)
            .cloned()
            .expect("initial version has ts 0")
    }

    /// Releases every lock held by `txn`.
    fn release_locks(&mut self, txn: TxnId) {
        self.locks.retain(|_, lock| {
            if lock.exclusive.is_some_and(|(t, _)| t == txn) {
                lock.exclusive = None;
            }
            lock.shared.remove(&txn);
            !lock.is_free()
        });
    }

    /// Appends a WAL record. `decision` records (commit/abort) always
    /// reach the log; prewrite and lock-intent records only on durable
    /// shards — that asymmetry *is* the `no-wal` bug under test.
    fn log(&mut self, rec: WalRecord) {
        let decision = matches!(rec, WalRecord::Commit { .. } | WalRecord::Abort { .. });
        if self.durable || decision {
            self.wal.push(rec);
        }
    }

    /// Takes `txn`'s exclusive locks and buffers its writes (the state
    /// change of a successful prewrite). Shared by the live handler and
    /// WAL replay.
    fn apply_prewrite(&mut self, txn: TxnId, start_ts: u64, writes: Vec<(Var, Value)>) {
        for (var, _) in &writes {
            self.locks.entry(*var).or_default().exclusive = Some((txn, start_ts));
        }
        self.txns.insert(txn, TxnState::Prewritten(writes));
    }

    /// Marks `txn` committed, installs its versions at `commit_ts` and
    /// releases its locks. Shared by the live handler, WAL replay and
    /// in-doubt decision application; callers guard against re-applying.
    fn apply_commit(&mut self, txn: TxnId, commit_ts: u64, writes: Vec<(Var, Value)>) {
        self.txns.insert(txn, TxnState::Committed);
        for (var, value) in writes {
            let chain = self.chain(var);
            let at = chain.partition_point(|v| v.ts <= commit_ts);
            chain.insert(
                at,
                Version {
                    ts: commit_ts,
                    value,
                    writer: Some(txn),
                },
            );
        }
        self.release_locks(txn);
    }

    /// Marks `txn` aborted and releases its locks. Shared by the live
    /// handler, WAL replay and presumed-abort decision application.
    fn apply_abort(&mut self, txn: TxnId) {
        self.txns.insert(txn, TxnState::Aborted);
        self.release_locks(txn);
    }

    /// Handles one request, returning the replies to send.
    pub fn handle(&mut self, from: Addr, req_id: u64, req: Request) -> Vec<(Addr, Message)> {
        match req {
            Request::Read {
                txn,
                var,
                snapshot,
                lock,
            } => vec![self.handle_read(from, req_id, txn, var, snapshot, lock)],
            Request::Prewrite {
                txn,
                start_ts,
                writes,
                conflict_check,
            } => vec![self.handle_prewrite(from, req_id, txn, start_ts, writes, conflict_check)],
            Request::Commit { txn, commit_ts } => {
                vec![self.handle_commit(from, req_id, txn, commit_ts)]
            }
            Request::Abort { txn } => vec![self.handle_abort(from, req_id, txn)],
            // The router only ever addresses shards with data-plane requests.
            other => unreachable!("shard {} received a non-shard request: {other:?}", self.id),
        }
    }

    fn handle_read(
        &mut self,
        from: Addr,
        req_id: u64,
        txn: TxnId,
        var: Var,
        snapshot: Option<u64>,
        lock: bool,
    ) -> (Addr, Message) {
        // Dead-attempt guard: a duplicate read arriving after the attempt
        // was decided must not (re-)take a shared lock on its behalf. The
        // client has long moved on, so the served value is irrelevant —
        // only the absence of a stray lock matters.
        let decided = matches!(
            self.txns.get(&txn),
            Some(TxnState::Committed | TxnState::Aborted)
        );
        match snapshot {
            Some(s) => {
                // A not-yet-installed version could be visible at this
                // snapshot iff some other attempt holds an exclusive lock
                // taken before the snapshot was drawn; make the client wait
                // for that commit/abort to resolve.
                let blocked = self
                    .locks
                    .get(&var)
                    .and_then(|l| l.exclusive)
                    .is_some_and(|(holder, start_ts)| holder != txn && start_ts <= s);
                if blocked && !decided {
                    return self.reply(from, req_id, Reply::ReadLocked);
                }
                let v = self.read_at(var, s);
                self.reply(
                    from,
                    req_id,
                    Reply::ReadOk {
                        value: v.value,
                        writer: v.writer,
                    },
                )
            }
            None => {
                let held_by_other = self
                    .locks
                    .get(&var)
                    .and_then(|l| l.exclusive)
                    .is_some_and(|(holder, _)| holder != txn);
                if held_by_other && !decided {
                    // No-wait strict two-phase locking: abort the reader.
                    return self.reply(from, req_id, Reply::ReadConflict);
                }
                if lock && !decided && self.locks.entry(var).or_default().shared.insert(txn) {
                    self.log(WalRecord::ReadLock { txn, var });
                }
                let v = self.read_at(var, u64::MAX);
                self.reply(
                    from,
                    req_id,
                    Reply::ReadOk {
                        value: v.value,
                        writer: v.writer,
                    },
                )
            }
        }
    }

    fn handle_prewrite(
        &mut self,
        from: Addr,
        req_id: u64,
        txn: TxnId,
        start_ts: u64,
        writes: Vec<(Var, Value)>,
        conflict_check: bool,
    ) -> (Addr, Message) {
        // Idempotency / dead-attempt guards first.
        match self.txns.get(&txn) {
            Some(TxnState::Prewritten(_) | TxnState::Committed) => {
                return self.reply(from, req_id, Reply::PrewriteOk);
            }
            Some(TxnState::Aborted) => {
                return self.reply(from, req_id, Reply::PrewriteConflict);
            }
            None => {}
        }
        // Lock conflicts: any exclusive or shared holder other than us.
        let lock_conflict = writes.iter().any(|(var, _)| {
            self.locks.get(var).is_some_and(|l| {
                l.exclusive.is_some_and(|(t, _)| t != txn) || l.shared.iter().any(|&t| t != txn)
            })
        });
        // First-committer-wins: a version newer than our snapshot means a
        // concurrent writer already committed.
        let version_conflict = conflict_check
            && writes
                .iter()
                .any(|&(var, _)| self.chain(var).last().is_some_and(|v| v.ts > start_ts));
        if lock_conflict || version_conflict {
            return self.reply(from, req_id, Reply::PrewriteConflict);
        }
        self.log(WalRecord::Prewrite {
            txn,
            start_ts,
            writes: writes.clone(),
        });
        self.apply_prewrite(txn, start_ts, writes);
        self.reply(from, req_id, Reply::PrewriteOk)
    }

    fn handle_commit(
        &mut self,
        from: Addr,
        req_id: u64,
        txn: TxnId,
        commit_ts: u64,
    ) -> (Addr, Message) {
        match self.txns.get(&txn) {
            Some(TxnState::Prewritten(writes)) => {
                let writes = writes.clone();
                self.log(WalRecord::Commit {
                    txn,
                    commit_ts,
                    writes: writes.clone(),
                });
                self.apply_commit(txn, commit_ts, writes);
            }
            Some(TxnState::Committed | TxnState::Aborted) => {} // idempotent
            None => {
                // A read-only (serializable) participant: nothing to
                // install, just release the shared locks.
                self.log(WalRecord::Commit {
                    txn,
                    commit_ts,
                    writes: Vec::new(),
                });
                self.apply_commit(txn, commit_ts, Vec::new());
            }
        }
        self.reply(from, req_id, Reply::CommitOk)
    }

    fn handle_abort(&mut self, from: Addr, req_id: u64, txn: TxnId) -> (Addr, Message) {
        match self.txns.get(&txn) {
            Some(TxnState::Committed) => {
                // A commit decision is final; an abort for a committed
                // attempt can only be a stale duplicate from a lost race
                // and must not undo anything.
            }
            Some(TxnState::Aborted) => {} // idempotent: no duplicate record
            _ => {
                self.log(WalRecord::Abort { txn });
                self.apply_abort(txn);
            }
        }
        self.reply(from, req_id, Reply::AbortOk)
    }

    /// Simulates a crash of this node: all volatile state — version
    /// chains, the lock table, per-attempt state — is discarded. The WAL
    /// (and the observability counters, which describe the run rather
    /// than the node) survive.
    pub fn crash(&mut self) {
        self.versions.clear();
        self.locks.clear();
        self.txns.clear();
    }

    /// Restarts the node after a [`Shard::crash`]: rebuilds state by
    /// replaying the WAL in order, then returns one
    /// [`Request::QueryDecision`] per in-doubt attempt (prewritten in the
    /// log with no decision record), addressed to the attempt's
    /// coordinator.
    ///
    /// Replay reuses the guarded apply primitives of the live handlers,
    /// so it is idempotent: a lock only resurrects for an attempt that is
    /// still undecided after the *whole* log is applied, and no version
    /// is ever installed twice.
    pub fn restart(&mut self) -> Vec<(Addr, Message)> {
        let wal = std::mem::take(&mut self.wal);
        for rec in &wal {
            self.recovery.wal_replayed += 1;
            match rec {
                WalRecord::ReadLock { txn, var } => {
                    // Re-intend the shared lock; a later Commit/Abort
                    // record releases it again during this same replay.
                    if !matches!(
                        self.txns.get(txn),
                        Some(TxnState::Committed | TxnState::Aborted)
                    ) {
                        self.locks.entry(*var).or_default().shared.insert(*txn);
                    }
                }
                WalRecord::Prewrite {
                    txn,
                    start_ts,
                    writes,
                } => {
                    if !self.txns.contains_key(txn) {
                        self.apply_prewrite(*txn, *start_ts, writes.clone());
                    }
                }
                WalRecord::Commit {
                    txn,
                    commit_ts,
                    writes,
                } => {
                    if !matches!(self.txns.get(txn), Some(TxnState::Committed)) {
                        self.apply_commit(*txn, *commit_ts, writes.clone());
                    }
                }
                WalRecord::Abort { txn } => {
                    if !matches!(self.txns.get(txn), Some(TxnState::Committed)) {
                        self.apply_abort(*txn);
                    }
                }
            }
        }
        self.wal = wal;
        let in_doubt: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, st)| matches!(st, TxnState::Prewritten(_)))
            .map(|(txn, _)| *txn)
            .collect();
        in_doubt
            .into_iter()
            .map(|txn| {
                self.next_req += 1;
                (
                    Addr::Client(txn.client),
                    Message {
                        from: Addr::Shard(self.id),
                        req_id: self.next_req,
                        payload: Payload::Request(Request::QueryDecision { txn }),
                    },
                )
            })
            .collect()
    }

    /// Applies a coordinator's [`Reply::Decision`] to an in-doubt attempt.
    /// Only a still-prewritten attempt is affected — duplicated, stale or
    /// raced decisions are dropped (a decision never changes once made,
    /// so this is safe, not just convenient).
    pub fn on_decision(&mut self, txn: TxnId, decision: Decision) {
        if !matches!(self.txns.get(&txn), Some(TxnState::Prewritten(_))) {
            return;
        }
        match decision {
            Decision::Committed(commit_ts) => {
                let Some(TxnState::Prewritten(writes)) = self.txns.get(&txn).cloned() else {
                    unreachable!("state checked above");
                };
                self.log(WalRecord::Commit {
                    txn,
                    commit_ts,
                    writes: writes.clone(),
                });
                self.apply_commit(txn, commit_ts, writes);
                self.recovery.indoubt_committed += 1;
            }
            Decision::Aborted => {
                self.log(WalRecord::Abort { txn });
                self.apply_abort(txn);
                self.recovery.indoubt_aborted += 1;
            }
            Decision::InProgress => {} // the ordinary protocol decides it
        }
    }

    /// Checks the shard's internal recovery invariants, returning a
    /// description of the first breach found: every exclusive lock is
    /// held by a prewritten (undecided) attempt, no shared lock belongs
    /// to a decided attempt (no resurrected locks), and every version
    /// chain is `ts`-sorted starting at the initial version with at most
    /// one version per installing attempt (no duplicate installs).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (var, lock) in &self.locks {
            if lock.is_free() {
                return Err(format!("shard {}: empty lock entry for {var:?}", self.id));
            }
            if let Some((t, _)) = lock.exclusive {
                if !matches!(self.txns.get(&t), Some(TxnState::Prewritten(_))) {
                    return Err(format!(
                        "shard {}: exclusive lock on {var:?} held by non-prewritten {t:?}",
                        self.id
                    ));
                }
            }
            for t in &lock.shared {
                if matches!(
                    self.txns.get(t),
                    Some(TxnState::Committed | TxnState::Aborted)
                ) {
                    return Err(format!(
                        "shard {}: resurrected shared lock on {var:?} by decided {t:?}",
                        self.id
                    ));
                }
            }
        }
        for (var, chain) in &self.versions {
            if chain.first().map(|v| (v.ts, v.writer)) != Some((0, None)) {
                return Err(format!(
                    "shard {}: chain of {var:?} does not start at the initial version",
                    self.id
                ));
            }
            let mut writers = BTreeSet::new();
            for (a, b) in chain.iter().zip(chain.iter().skip(1)) {
                if a.ts > b.ts {
                    return Err(format!(
                        "shard {}: chain of {var:?} is not ts-sorted ({} > {})",
                        self.id, a.ts, b.ts
                    ));
                }
            }
            for v in chain.iter().filter(|v| v.writer.is_some()) {
                if !writers.insert(v.writer) {
                    return Err(format!(
                        "shard {}: duplicate version install of {var:?} by {:?}",
                        self.id, v.writer
                    ));
                }
                let writer = v.writer.expect("filtered to writer.is_some() above");
                if !matches!(self.txns.get(&writer), Some(TxnState::Committed)) {
                    return Err(format!(
                        "shard {}: {var:?} version installed by uncommitted {:?}",
                        self.id, v.writer
                    ));
                }
            }
        }
        Ok(())
    }

    /// Whether the shard holds any locks (used by end-of-run stranded-lock
    /// checks: once every client finished, all locks must be released).
    pub fn holds_locks(&self) -> bool {
        !self.locks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(c: u32, a: u32) -> TxnId {
        TxnId {
            client: c,
            attempt: a,
        }
    }

    fn expect_reply(mut replies: Vec<(Addr, Message)>) -> Reply {
        assert_eq!(replies.len(), 1);
        match replies
            .pop()
            .expect("asserted a single reply above")
            .1
            .payload
        {
            Payload::Reply(r) => r,
            other => panic!("expected a reply, got {other:?}"),
        }
    }

    fn prewrite(
        shard: &mut Shard,
        t: TxnId,
        start_ts: u64,
        var: Var,
        v: i64,
        check: bool,
    ) -> Reply {
        expect_reply(shard.handle(
            Addr::Client(t.client),
            1,
            Request::Prewrite {
                txn: t,
                start_ts,
                writes: vec![(var, Value::Int(v))],
                conflict_check: check,
            },
        ))
    }

    fn commit(shard: &mut Shard, t: TxnId, ts: u64) -> Reply {
        expect_reply(shard.handle(
            Addr::Client(t.client),
            2,
            Request::Commit {
                txn: t,
                commit_ts: ts,
            },
        ))
    }

    fn read_snapshot(shard: &mut Shard, t: TxnId, var: Var, s: u64) -> Reply {
        expect_reply(shard.handle(
            Addr::Client(t.client),
            3,
            Request::Read {
                txn: t,
                var,
                snapshot: Some(s),
                lock: false,
            },
        ))
    }

    #[test]
    fn snapshot_reads_see_the_version_at_their_timestamp() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::from([(x, Value::Int(7))]));
        let t = txn(0, 0);
        assert_eq!(prewrite(&mut shard, t, 1, x, 10, true), Reply::PrewriteOk);
        assert_eq!(commit(&mut shard, t, 5), Reply::CommitOk);
        // Snapshot below the commit sees init; at or above sees the write.
        assert_eq!(
            read_snapshot(&mut shard, txn(1, 1), x, 4),
            Reply::ReadOk {
                value: Value::Int(7),
                writer: None
            }
        );
        assert_eq!(
            read_snapshot(&mut shard, txn(1, 1), x, 5),
            Reply::ReadOk {
                value: Value::Int(10),
                writer: Some(t)
            }
        );
    }

    #[test]
    fn snapshot_reads_wait_on_possibly_visible_locks() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let writer = txn(0, 0);
        assert_eq!(
            prewrite(&mut shard, writer, 3, x, 1, true),
            Reply::PrewriteOk
        );
        // Reader with snapshot >= the lock's start_ts must wait…
        assert_eq!(
            read_snapshot(&mut shard, txn(1, 1), x, 8),
            Reply::ReadLocked
        );
        // …but a snapshot from before the writer even started reads around.
        assert_eq!(
            read_snapshot(&mut shard, txn(1, 1), x, 2),
            Reply::ReadOk {
                value: Value::Int(0),
                writer: None
            }
        );
        assert_eq!(commit(&mut shard, writer, 9), Reply::CommitOk);
        assert_eq!(
            read_snapshot(&mut shard, txn(1, 1), x, 8),
            Reply::ReadOk {
                value: Value::Int(0),
                writer: None
            }
        );
    }

    #[test]
    fn first_committer_wins_rejects_stale_prewrites() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let first = txn(0, 0);
        assert_eq!(
            prewrite(&mut shard, first, 1, x, 1, true),
            Reply::PrewriteOk
        );
        assert_eq!(commit(&mut shard, first, 4), Reply::CommitOk);
        // A concurrent writer that started before the commit is rejected…
        assert_eq!(
            prewrite(&mut shard, txn(1, 1), 2, x, 2, true),
            Reply::PrewriteConflict
        );
        // …unless the conflict check is off (the weakened protocol).
        assert_eq!(
            prewrite(&mut shard, txn(2, 2), 2, x, 3, false),
            Reply::PrewriteOk
        );
    }

    #[test]
    fn locking_reads_conflict_with_exclusive_locks_and_block_prewrites() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let reader = txn(0, 0);
        // Shared lock via a locking read.
        assert_eq!(
            expect_reply(shard.handle(
                Addr::Client(0),
                1,
                Request::Read {
                    txn: reader,
                    var: x,
                    snapshot: None,
                    lock: true,
                },
            )),
            Reply::ReadOk {
                value: Value::Int(0),
                writer: None
            }
        );
        // Another attempt's prewrite hits the shared lock.
        assert_eq!(
            prewrite(&mut shard, txn(1, 1), 0, x, 1, false),
            Reply::PrewriteConflict
        );
        // After the reader commits (releasing locks), the prewrite goes
        // through, and a new locking read now hits the exclusive lock.
        assert_eq!(commit(&mut shard, reader, 0), Reply::CommitOk);
        assert_eq!(
            prewrite(&mut shard, txn(1, 2), 0, x, 1, false),
            Reply::PrewriteOk
        );
        assert_eq!(
            expect_reply(shard.handle(
                Addr::Client(2),
                9,
                Request::Read {
                    txn: txn(2, 3),
                    var: x,
                    snapshot: None,
                    lock: true,
                },
            )),
            Reply::ReadConflict
        );
    }

    #[test]
    fn duplicate_and_late_messages_are_harmless() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let t = txn(0, 0);
        assert_eq!(prewrite(&mut shard, t, 1, x, 1, true), Reply::PrewriteOk);
        // Duplicate prewrite: still Ok, no double bookkeeping.
        assert_eq!(prewrite(&mut shard, t, 1, x, 1, true), Reply::PrewriteOk);
        assert_eq!(commit(&mut shard, t, 3), Reply::CommitOk);
        // Duplicate commit: idempotent, no second version.
        assert_eq!(commit(&mut shard, t, 3), Reply::CommitOk);
        assert_eq!(shard.versions[&x].len(), 2);
        // Late duplicate prewrite after commit: Ok but no lock comes back.
        assert_eq!(prewrite(&mut shard, t, 1, x, 1, true), Reply::PrewriteOk);
        assert!(shard.locks.is_empty());
        // A late abort for a committed attempt must not undo the commit.
        assert_eq!(
            expect_reply(shard.handle(Addr::Client(0), 7, Request::Abort { txn: t })),
            Reply::AbortOk
        );
        assert_eq!(shard.txns[&t], TxnState::Committed);

        // Aborted attempts stay dead: late prewrites conflict, late locking
        // reads do not leave a stray shared lock behind.
        let dead = txn(1, 1);
        assert_eq!(
            expect_reply(shard.handle(Addr::Client(1), 8, Request::Abort { txn: dead })),
            Reply::AbortOk
        );
        assert_eq!(
            prewrite(&mut shard, dead, 5, x, 9, true),
            Reply::PrewriteConflict
        );
        assert!(matches!(
            expect_reply(shard.handle(
                Addr::Client(1),
                9,
                Request::Read {
                    txn: dead,
                    var: x,
                    snapshot: None,
                    lock: true,
                },
            )),
            Reply::ReadOk { .. }
        ));
        assert!(shard.locks.is_empty());
    }

    fn abort(shard: &mut Shard, t: TxnId) -> Reply {
        expect_reply(shard.handle(Addr::Client(t.client), 4, Request::Abort { txn: t }))
    }

    fn query_targets(msgs: &[(Addr, Message)]) -> Vec<TxnId> {
        msgs.iter()
            .map(|(to, m)| match (&m.payload, to) {
                (Payload::Request(Request::QueryDecision { txn }), Addr::Client(c)) => {
                    assert_eq!(*c, txn.client, "query must go to the coordinator");
                    *txn
                }
                other => panic!("expected a decision query, got {other:?}"),
            })
            .collect()
    }

    #[test]
    fn recovery_replays_the_wal_and_queries_in_doubt_attempts() {
        let (x, y) = (Var(0), Var(1));
        let mut shard = Shard::new(0, BTreeMap::from([(x, Value::Int(7))]));
        let done = txn(0, 1);
        let in_doubt = txn(1, 1);
        // One attempt commits before the crash, another is prewritten.
        assert_eq!(
            prewrite(&mut shard, done, 1, x, 10, true),
            Reply::PrewriteOk
        );
        assert_eq!(commit(&mut shard, done, 3), Reply::CommitOk);
        assert_eq!(
            prewrite(&mut shard, in_doubt, 4, y, 20, true),
            Reply::PrewriteOk
        );
        shard.crash();
        assert!(shard.versions.is_empty() && shard.locks.is_empty() && shard.txns.is_empty());
        let queries = shard.restart();
        shard.check_invariants().expect("shard invariants hold");
        // Committed data is back, the in-doubt lock is resurrected, and
        // exactly the undecided attempt is queried.
        assert_eq!(
            read_snapshot(&mut shard, txn(2, 9), x, 3),
            Reply::ReadOk {
                value: Value::Int(10),
                writer: Some(done)
            }
        );
        assert_eq!(query_targets(&queries), vec![in_doubt]);
        assert_eq!(
            read_snapshot(&mut shard, txn(2, 9), y, 9),
            Reply::ReadLocked
        );
        // The coordinator answers Committed: the write installs once.
        shard.on_decision(in_doubt, Decision::Committed(6));
        shard.check_invariants().expect("shard invariants hold");
        assert_eq!(
            read_snapshot(&mut shard, txn(2, 9), y, 9),
            Reply::ReadOk {
                value: Value::Int(20),
                writer: Some(in_doubt)
            }
        );
        assert_eq!(shard.recovery_stats().indoubt_committed, 1);
        assert!(shard.recovery_stats().wal_replayed >= 3);
        // Crashing again replays the decision too — nothing is in doubt.
        shard.crash();
        assert!(shard.restart().is_empty());
        shard.check_invariants().expect("shard invariants hold");
        assert_eq!(shard.versions[&y].len(), 2, "no duplicate install");
    }

    #[test]
    fn presumed_abort_discards_the_recovered_prewrite() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let t = txn(0, 1);
        assert_eq!(prewrite(&mut shard, t, 1, x, 5, true), Reply::PrewriteOk);
        shard.crash();
        let queries = shard.restart();
        assert_eq!(query_targets(&queries), vec![t]);
        shard.on_decision(t, Decision::Aborted);
        shard.check_invariants().expect("shard invariants hold");
        assert!(shard.locks.is_empty(), "presumed abort releases locks");
        assert_eq!(shard.recovery_stats().indoubt_aborted, 1);
        // The decision is final: a late duplicate prewrite conflicts, a
        // duplicate decision is a no-op, and InProgress never mutates.
        assert_eq!(
            prewrite(&mut shard, t, 1, x, 5, true),
            Reply::PrewriteConflict
        );
        shard.on_decision(t, Decision::Committed(9));
        assert!(shard.versions.get(&x).is_none_or(|c| c.len() == 1));
        let fresh = txn(2, 2);
        assert_eq!(
            prewrite(&mut shard, fresh, 2, x, 6, true),
            Reply::PrewriteOk
        );
        shard.on_decision(fresh, Decision::InProgress);
        assert_eq!(
            shard.txns[&fresh],
            TxnState::Prewritten(vec![(x, Value::Int(6))])
        );
    }

    #[test]
    fn shared_lock_intents_survive_crashes_until_decided() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let reader = txn(0, 1);
        expect_reply(shard.handle(
            Addr::Client(0),
            1,
            Request::Read {
                txn: reader,
                var: x,
                snapshot: None,
                lock: true,
            },
        ));
        shard.crash();
        assert!(
            shard.restart().is_empty(),
            "shared locks are not 2PC in-doubt"
        );
        shard.check_invariants().expect("shard invariants hold");
        // The resurrected shared lock still blocks writers…
        assert_eq!(
            prewrite(&mut shard, txn(1, 2), 0, x, 1, false),
            Reply::PrewriteConflict
        );
        // …until the reader's commit (resent by the client) releases it.
        assert_eq!(commit(&mut shard, reader, 0), Reply::CommitOk);
        shard.crash();
        shard.restart();
        shard.check_invariants().expect("shard invariants hold");
        assert!(
            !shard.holds_locks(),
            "no resurrected lock for a decided read"
        );
        assert_eq!(
            prewrite(&mut shard, txn(1, 3), 0, x, 1, false),
            Reply::PrewriteOk
        );
    }

    #[test]
    fn volatile_shard_forgets_prewrites_and_violates_first_committer_wins() {
        let x = Var(0);
        let mut shard = Shard::with_durability(0, BTreeMap::new(), false);
        let a = txn(0, 1);
        let b = txn(1, 1);
        assert_eq!(prewrite(&mut shard, a, 1, x, 10, true), Reply::PrewriteOk);
        shard.crash();
        assert!(
            shard.restart().is_empty(),
            "nothing in doubt: the WAL lost it"
        );
        // The concurrent writer now sneaks past the lost lock…
        assert_eq!(prewrite(&mut shard, b, 2, x, 20, true), Reply::PrewriteOk);
        assert_eq!(commit(&mut shard, b, 5), Reply::CommitOk);
        // …and a's commit arrives to a shard that no longer knows its
        // writes: a is marked committed but installs nothing — the lost
        // update the checker must catch end to end.
        assert_eq!(commit(&mut shard, a, 6), Reply::CommitOk);
        shard.check_invariants().expect("shard invariants hold");
        assert_eq!(shard.versions[&x].len(), 2, "only b's version exists");
        // Decisions are still durable on the volatile shard: replaying
        // after another crash keeps b's version and a's decision.
        shard.crash();
        shard.restart();
        shard.check_invariants().expect("shard invariants hold");
        assert_eq!(shard.versions[&x].len(), 2);
        assert_eq!(shard.txns[&a], TxnState::Committed);
    }

    #[test]
    fn aborted_attempts_stay_dead_across_crashes() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let t = txn(0, 1);
        assert_eq!(prewrite(&mut shard, t, 1, x, 5, true), Reply::PrewriteOk);
        assert_eq!(abort(&mut shard, t), Reply::AbortOk);
        shard.crash();
        assert!(shard.restart().is_empty(), "aborted attempt is decided");
        shard.check_invariants().expect("shard invariants hold");
        assert!(
            !shard.holds_locks(),
            "no resurrected lock for an aborted attempt"
        );
        // A late duplicate prewrite (e.g. a network duplicate delivered
        // after the restart) must not resurrect the attempt.
        assert_eq!(
            prewrite(&mut shard, t, 1, x, 5, true),
            Reply::PrewriteConflict
        );
        assert!(!shard.holds_locks());
    }

    #[test]
    fn read_only_serializable_commit_releases_shared_locks() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let t = txn(0, 0);
        expect_reply(shard.handle(
            Addr::Client(0),
            1,
            Request::Read {
                txn: t,
                var: x,
                snapshot: None,
                lock: true,
            },
        ));
        assert!(!shard.locks.is_empty());
        assert_eq!(commit(&mut shard, t, 0), Reply::CommitOk);
        assert!(shard.locks.is_empty());
    }
}
