//! Server nodes: MVCC shards and the timestamp oracle.
//!
//! Each shard owns the version chains and lock table of its slice of the
//! key space and is driven purely by messages. Handlers are **idempotent**
//! — per-attempt state (`TxnState`) is kept forever (simulation runs are
//! bounded), so duplicated, reordered or late messages can never resurrect
//! a lock or re-install a version:
//!
//! * a `Read` for an attempt already decided is served without locking;
//! * a duplicate `Prewrite` of a prewritten/committed attempt is `Ok`
//!   without re-locking; after an abort it is `Conflict`;
//! * `Commit` and `Abort` are no-ops the second time.
//!
//! The correctness invariant the snapshot modes rely on: a version with
//! `ts <= s` is either installed or guarded by an exclusive lock with
//! `start_ts <= s` at the moment a snapshot-`s` read arrives (locks are
//! taken at prewrite, before the commit timestamp is drawn, and the oracle
//! is monotone).

use std::collections::{BTreeMap, BTreeSet};

use txdpor_history::{Value, Var};

use crate::msg::{Addr, Message, Payload, Reply, Request, TxnId};

/// The timestamp oracle: a monotone counter serving start and commit
/// timestamps. Timestamp 0 is reserved for initial versions.
#[derive(Debug, Default)]
pub struct Oracle {
    next: u64,
}

impl Oracle {
    /// Creates the oracle; the first timestamp served is 1.
    pub fn new() -> Self {
        Oracle { next: 0 }
    }

    /// Handles a timestamp request, replying to `from`.
    pub fn handle(&mut self, from: Addr, req_id: u64, req: &Request) -> Vec<(Addr, Message)> {
        match req {
            Request::StartTs | Request::CommitTs => {
                self.next += 1;
                vec![(
                    from,
                    Message {
                        from: Addr::Oracle,
                        req_id,
                        payload: Payload::Reply(Reply::Ts(self.next)),
                    },
                )]
            }
            other => panic!("oracle received a non-timestamp request: {other:?}"),
        }
    }
}

/// One installed version of a variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Version {
    /// Commit timestamp of the version (0 for the initial version).
    pub ts: u64,
    /// The stored value.
    pub value: Value,
    /// The attempt that installed it (`None` for init).
    pub writer: Option<TxnId>,
}

/// The lock state of one variable.
#[derive(Clone, Debug, Default)]
struct Lock {
    /// Exclusive (prewrite) holder, with its start timestamp.
    exclusive: Option<(TxnId, u64)>,
    /// Shared (serializable read) holders.
    shared: BTreeSet<TxnId>,
}

impl Lock {
    fn is_free(&self) -> bool {
        self.exclusive.is_none() && self.shared.is_empty()
    }
}

/// Per-attempt state retained by a shard.
#[derive(Clone, Debug, PartialEq)]
enum TxnState {
    /// Prewritten: the buffered writes await a commit timestamp.
    Prewritten(Vec<(Var, Value)>),
    /// Committed (terminal).
    Committed,
    /// Aborted (terminal).
    Aborted,
}

/// A storage shard: version chains, lock table and per-attempt state for
/// its slice of the key space.
#[derive(Debug)]
pub struct Shard {
    id: u32,
    /// Version chains, oldest first (insertion keeps `ts` sorted).
    versions: BTreeMap<Var, Vec<Version>>,
    locks: BTreeMap<Var, Lock>,
    txns: BTreeMap<TxnId, TxnState>,
    /// Initial values of the key space (vars absent here start at `Int(0)`).
    init: BTreeMap<Var, Value>,
}

impl Shard {
    /// Creates shard `id` over the given initial values.
    pub fn new(id: u32, init: BTreeMap<Var, Value>) -> Self {
        Shard {
            id,
            versions: BTreeMap::new(),
            locks: BTreeMap::new(),
            txns: BTreeMap::new(),
            init,
        }
    }

    fn reply(&self, to: Addr, req_id: u64, reply: Reply) -> (Addr, Message) {
        (
            to,
            Message {
                from: Addr::Shard(self.id),
                req_id,
                payload: Payload::Reply(reply),
            },
        )
    }

    /// The version chain of `var`, lazily seeded with the initial version.
    fn chain(&mut self, var: Var) -> &mut Vec<Version> {
        let init = self.init.get(&var).cloned().unwrap_or_default();
        self.versions.entry(var).or_insert_with(|| {
            vec![Version {
                ts: 0,
                value: init,
                writer: None,
            }]
        })
    }

    /// The latest version with `ts <= snapshot` (the initial version is
    /// always present, so this never fails).
    fn read_at(&mut self, var: Var, snapshot: u64) -> Version {
        self.chain(var)
            .iter()
            .rev()
            .find(|v| v.ts <= snapshot)
            .cloned()
            .expect("initial version has ts 0")
    }

    /// Releases every lock held by `txn`.
    fn release_locks(&mut self, txn: TxnId) {
        self.locks.retain(|_, lock| {
            if lock.exclusive.is_some_and(|(t, _)| t == txn) {
                lock.exclusive = None;
            }
            lock.shared.remove(&txn);
            !lock.is_free()
        });
    }

    /// Handles one request, returning the replies to send.
    pub fn handle(&mut self, from: Addr, req_id: u64, req: Request) -> Vec<(Addr, Message)> {
        match req {
            Request::Read {
                txn,
                var,
                snapshot,
                lock,
            } => vec![self.handle_read(from, req_id, txn, var, snapshot, lock)],
            Request::Prewrite {
                txn,
                start_ts,
                writes,
                conflict_check,
            } => vec![self.handle_prewrite(from, req_id, txn, start_ts, writes, conflict_check)],
            Request::Commit { txn, commit_ts } => {
                vec![self.handle_commit(from, req_id, txn, commit_ts)]
            }
            Request::Abort { txn } => vec![self.handle_abort(from, req_id, txn)],
            other => panic!("shard {} received an oracle request: {other:?}", self.id),
        }
    }

    fn handle_read(
        &mut self,
        from: Addr,
        req_id: u64,
        txn: TxnId,
        var: Var,
        snapshot: Option<u64>,
        lock: bool,
    ) -> (Addr, Message) {
        // Dead-attempt guard: a duplicate read arriving after the attempt
        // was decided must not (re-)take a shared lock on its behalf. The
        // client has long moved on, so the served value is irrelevant —
        // only the absence of a stray lock matters.
        let decided = matches!(
            self.txns.get(&txn),
            Some(TxnState::Committed | TxnState::Aborted)
        );
        match snapshot {
            Some(s) => {
                // A not-yet-installed version could be visible at this
                // snapshot iff some other attempt holds an exclusive lock
                // taken before the snapshot was drawn; make the client wait
                // for that commit/abort to resolve.
                let blocked = self
                    .locks
                    .get(&var)
                    .and_then(|l| l.exclusive)
                    .is_some_and(|(holder, start_ts)| holder != txn && start_ts <= s);
                if blocked && !decided {
                    return self.reply(from, req_id, Reply::ReadLocked);
                }
                let v = self.read_at(var, s);
                self.reply(
                    from,
                    req_id,
                    Reply::ReadOk {
                        value: v.value,
                        writer: v.writer,
                    },
                )
            }
            None => {
                let held_by_other = self
                    .locks
                    .get(&var)
                    .and_then(|l| l.exclusive)
                    .is_some_and(|(holder, _)| holder != txn);
                if held_by_other && !decided {
                    // No-wait strict two-phase locking: abort the reader.
                    return self.reply(from, req_id, Reply::ReadConflict);
                }
                if lock && !decided {
                    self.locks.entry(var).or_default().shared.insert(txn);
                }
                let v = self.read_at(var, u64::MAX);
                self.reply(
                    from,
                    req_id,
                    Reply::ReadOk {
                        value: v.value,
                        writer: v.writer,
                    },
                )
            }
        }
    }

    fn handle_prewrite(
        &mut self,
        from: Addr,
        req_id: u64,
        txn: TxnId,
        start_ts: u64,
        writes: Vec<(Var, Value)>,
        conflict_check: bool,
    ) -> (Addr, Message) {
        // Idempotency / dead-attempt guards first.
        match self.txns.get(&txn) {
            Some(TxnState::Prewritten(_) | TxnState::Committed) => {
                return self.reply(from, req_id, Reply::PrewriteOk);
            }
            Some(TxnState::Aborted) => {
                return self.reply(from, req_id, Reply::PrewriteConflict);
            }
            None => {}
        }
        // Lock conflicts: any exclusive or shared holder other than us.
        let lock_conflict = writes.iter().any(|(var, _)| {
            self.locks.get(var).is_some_and(|l| {
                l.exclusive.is_some_and(|(t, _)| t != txn) || l.shared.iter().any(|&t| t != txn)
            })
        });
        // First-committer-wins: a version newer than our snapshot means a
        // concurrent writer already committed.
        let version_conflict = conflict_check
            && writes
                .iter()
                .any(|&(var, _)| self.chain(var).last().is_some_and(|v| v.ts > start_ts));
        if lock_conflict || version_conflict {
            return self.reply(from, req_id, Reply::PrewriteConflict);
        }
        for (var, _) in &writes {
            self.locks.entry(*var).or_default().exclusive = Some((txn, start_ts));
        }
        self.txns.insert(txn, TxnState::Prewritten(writes));
        self.reply(from, req_id, Reply::PrewriteOk)
    }

    fn handle_commit(
        &mut self,
        from: Addr,
        req_id: u64,
        txn: TxnId,
        commit_ts: u64,
    ) -> (Addr, Message) {
        match self.txns.get(&txn) {
            Some(TxnState::Prewritten(_)) => {
                let Some(TxnState::Prewritten(writes)) = self.txns.insert(txn, TxnState::Committed)
                else {
                    unreachable!("state checked above");
                };
                for (var, value) in writes {
                    let chain = self.chain(var);
                    let at = chain.partition_point(|v| v.ts <= commit_ts);
                    chain.insert(
                        at,
                        Version {
                            ts: commit_ts,
                            value,
                            writer: Some(txn),
                        },
                    );
                }
                self.release_locks(txn);
            }
            Some(TxnState::Committed | TxnState::Aborted) => {} // idempotent
            None => {
                // A read-only (serializable) participant: nothing to
                // install, just release the shared locks.
                self.txns.insert(txn, TxnState::Committed);
                self.release_locks(txn);
            }
        }
        self.reply(from, req_id, Reply::CommitOk)
    }

    fn handle_abort(&mut self, from: Addr, req_id: u64, txn: TxnId) -> (Addr, Message) {
        match self.txns.get(&txn) {
            Some(TxnState::Committed) => {
                // A commit decision is final; an abort for a committed
                // attempt can only be a stale duplicate from a lost race
                // and must not undo anything.
            }
            _ => {
                self.txns.insert(txn, TxnState::Aborted);
                self.release_locks(txn);
            }
        }
        self.reply(from, req_id, Reply::AbortOk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(c: u32, a: u32) -> TxnId {
        TxnId {
            client: c,
            attempt: a,
        }
    }

    fn expect_reply(mut replies: Vec<(Addr, Message)>) -> Reply {
        assert_eq!(replies.len(), 1);
        match replies.pop().unwrap().1.payload {
            Payload::Reply(r) => r,
            other => panic!("expected a reply, got {other:?}"),
        }
    }

    fn prewrite(
        shard: &mut Shard,
        t: TxnId,
        start_ts: u64,
        var: Var,
        v: i64,
        check: bool,
    ) -> Reply {
        expect_reply(shard.handle(
            Addr::Client(t.client),
            1,
            Request::Prewrite {
                txn: t,
                start_ts,
                writes: vec![(var, Value::Int(v))],
                conflict_check: check,
            },
        ))
    }

    fn commit(shard: &mut Shard, t: TxnId, ts: u64) -> Reply {
        expect_reply(shard.handle(
            Addr::Client(t.client),
            2,
            Request::Commit {
                txn: t,
                commit_ts: ts,
            },
        ))
    }

    fn read_snapshot(shard: &mut Shard, t: TxnId, var: Var, s: u64) -> Reply {
        expect_reply(shard.handle(
            Addr::Client(t.client),
            3,
            Request::Read {
                txn: t,
                var,
                snapshot: Some(s),
                lock: false,
            },
        ))
    }

    #[test]
    fn snapshot_reads_see_the_version_at_their_timestamp() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::from([(x, Value::Int(7))]));
        let t = txn(0, 0);
        assert_eq!(prewrite(&mut shard, t, 1, x, 10, true), Reply::PrewriteOk);
        assert_eq!(commit(&mut shard, t, 5), Reply::CommitOk);
        // Snapshot below the commit sees init; at or above sees the write.
        assert_eq!(
            read_snapshot(&mut shard, txn(1, 1), x, 4),
            Reply::ReadOk {
                value: Value::Int(7),
                writer: None
            }
        );
        assert_eq!(
            read_snapshot(&mut shard, txn(1, 1), x, 5),
            Reply::ReadOk {
                value: Value::Int(10),
                writer: Some(t)
            }
        );
    }

    #[test]
    fn snapshot_reads_wait_on_possibly_visible_locks() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let writer = txn(0, 0);
        assert_eq!(
            prewrite(&mut shard, writer, 3, x, 1, true),
            Reply::PrewriteOk
        );
        // Reader with snapshot >= the lock's start_ts must wait…
        assert_eq!(
            read_snapshot(&mut shard, txn(1, 1), x, 8),
            Reply::ReadLocked
        );
        // …but a snapshot from before the writer even started reads around.
        assert_eq!(
            read_snapshot(&mut shard, txn(1, 1), x, 2),
            Reply::ReadOk {
                value: Value::Int(0),
                writer: None
            }
        );
        assert_eq!(commit(&mut shard, writer, 9), Reply::CommitOk);
        assert_eq!(
            read_snapshot(&mut shard, txn(1, 1), x, 8),
            Reply::ReadOk {
                value: Value::Int(0),
                writer: None
            }
        );
    }

    #[test]
    fn first_committer_wins_rejects_stale_prewrites() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let first = txn(0, 0);
        assert_eq!(
            prewrite(&mut shard, first, 1, x, 1, true),
            Reply::PrewriteOk
        );
        assert_eq!(commit(&mut shard, first, 4), Reply::CommitOk);
        // A concurrent writer that started before the commit is rejected…
        assert_eq!(
            prewrite(&mut shard, txn(1, 1), 2, x, 2, true),
            Reply::PrewriteConflict
        );
        // …unless the conflict check is off (the weakened protocol).
        assert_eq!(
            prewrite(&mut shard, txn(2, 2), 2, x, 3, false),
            Reply::PrewriteOk
        );
    }

    #[test]
    fn locking_reads_conflict_with_exclusive_locks_and_block_prewrites() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let reader = txn(0, 0);
        // Shared lock via a locking read.
        assert_eq!(
            expect_reply(shard.handle(
                Addr::Client(0),
                1,
                Request::Read {
                    txn: reader,
                    var: x,
                    snapshot: None,
                    lock: true,
                },
            )),
            Reply::ReadOk {
                value: Value::Int(0),
                writer: None
            }
        );
        // Another attempt's prewrite hits the shared lock.
        assert_eq!(
            prewrite(&mut shard, txn(1, 1), 0, x, 1, false),
            Reply::PrewriteConflict
        );
        // After the reader commits (releasing locks), the prewrite goes
        // through, and a new locking read now hits the exclusive lock.
        assert_eq!(commit(&mut shard, reader, 0), Reply::CommitOk);
        assert_eq!(
            prewrite(&mut shard, txn(1, 2), 0, x, 1, false),
            Reply::PrewriteOk
        );
        assert_eq!(
            expect_reply(shard.handle(
                Addr::Client(2),
                9,
                Request::Read {
                    txn: txn(2, 3),
                    var: x,
                    snapshot: None,
                    lock: true,
                },
            )),
            Reply::ReadConflict
        );
    }

    #[test]
    fn duplicate_and_late_messages_are_harmless() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let t = txn(0, 0);
        assert_eq!(prewrite(&mut shard, t, 1, x, 1, true), Reply::PrewriteOk);
        // Duplicate prewrite: still Ok, no double bookkeeping.
        assert_eq!(prewrite(&mut shard, t, 1, x, 1, true), Reply::PrewriteOk);
        assert_eq!(commit(&mut shard, t, 3), Reply::CommitOk);
        // Duplicate commit: idempotent, no second version.
        assert_eq!(commit(&mut shard, t, 3), Reply::CommitOk);
        assert_eq!(shard.versions[&x].len(), 2);
        // Late duplicate prewrite after commit: Ok but no lock comes back.
        assert_eq!(prewrite(&mut shard, t, 1, x, 1, true), Reply::PrewriteOk);
        assert!(shard.locks.is_empty());
        // A late abort for a committed attempt must not undo the commit.
        assert_eq!(
            expect_reply(shard.handle(Addr::Client(0), 7, Request::Abort { txn: t })),
            Reply::AbortOk
        );
        assert_eq!(shard.txns[&t], TxnState::Committed);

        // Aborted attempts stay dead: late prewrites conflict, late locking
        // reads do not leave a stray shared lock behind.
        let dead = txn(1, 1);
        assert_eq!(
            expect_reply(shard.handle(Addr::Client(1), 8, Request::Abort { txn: dead })),
            Reply::AbortOk
        );
        assert_eq!(
            prewrite(&mut shard, dead, 5, x, 9, true),
            Reply::PrewriteConflict
        );
        assert!(matches!(
            expect_reply(shard.handle(
                Addr::Client(1),
                9,
                Request::Read {
                    txn: dead,
                    var: x,
                    snapshot: None,
                    lock: true,
                },
            )),
            Reply::ReadOk { .. }
        ));
        assert!(shard.locks.is_empty());
    }

    #[test]
    fn read_only_serializable_commit_releases_shared_locks() {
        let x = Var(0);
        let mut shard = Shard::new(0, BTreeMap::new());
        let t = txn(0, 0);
        expect_reply(shard.handle(
            Addr::Client(0),
            1,
            Request::Read {
                txn: t,
                var: x,
                snapshot: None,
                lock: true,
            },
        ));
        assert!(!shard.locks.is_empty());
        assert_eq!(commit(&mut shard, t, 0), Reply::CommitOk);
        assert!(shard.locks.is_empty());
    }
}
