//! Node addresses and the message vocabulary of the store protocol.
//!
//! Every interaction between clients, shards and the timestamp oracle is a
//! [`Message`] carried by the simulated network — there is no shared
//! memory. Requests and replies are matched by a per-client `req_id`, which
//! makes every handler safe under duplication and reordering: a reply for a
//! request the client no longer has outstanding is simply dropped.
//!
//! One request flows the other way: a shard recovering from a crash sends
//! [`Request::QueryDecision`] to the coordinator (client) of each in-doubt
//! attempt it replayed from its write-ahead log, and the client answers
//! with [`Reply::Decision`]. These are matched by the attempt id carried in
//! the payload, not by `req_id` — applying a decision is idempotent, so the
//! shard needs no outstanding-request bookkeeping.

use txdpor_history::{Value, Var};

/// A network endpoint of the deployment.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Addr {
    /// A storage shard.
    Shard(u32),
    /// The timestamp oracle.
    Oracle,
    /// A client driver.
    Client(u32),
}

impl Addr {
    /// Dense node index used by partition plans: shards first, then the
    /// oracle, then clients.
    pub fn node_index(self, num_shards: u32) -> u32 {
        match self {
            Addr::Shard(i) => i,
            Addr::Oracle => num_shards,
            Addr::Client(c) => num_shards + 1 + c,
        }
    }
}

/// Globally unique identifier of one transaction *attempt*. Retries of the
/// same program transaction get fresh ids, so shard-side per-transaction
/// state never confuses an aborted attempt with its successor.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TxnId {
    /// The issuing client (= session index).
    pub client: u32,
    /// Client-local attempt counter.
    pub attempt: u32,
}

/// A request sent by a client to a shard or to the oracle.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Draw a start (snapshot) timestamp from the oracle.
    StartTs,
    /// Draw a commit timestamp from the oracle.
    CommitTs,
    /// Read a variable. `snapshot` is `Some(ts)` for snapshot-mode reads
    /// (serve the latest version with `version.ts <= ts`), `None` for
    /// locking reads (serve the latest version). `lock` requests a shared
    /// lock (serializable mode).
    Read {
        /// The reading attempt.
        txn: TxnId,
        /// Variable to read.
        var: Var,
        /// Snapshot timestamp, if snapshot-mode.
        snapshot: Option<u64>,
        /// Whether to take a shared lock.
        lock: bool,
    },
    /// First phase of commit: acquire exclusive locks on the written
    /// variables of this shard and buffer the writes. `conflict_check`
    /// additionally enforces first-committer-wins (snapshot isolation):
    /// reject if any written variable has a version newer than `start_ts`.
    Prewrite {
        /// The committing attempt.
        txn: TxnId,
        /// The attempt's start timestamp (0 when the mode draws none).
        start_ts: u64,
        /// The writes destined for this shard.
        writes: Vec<(Var, Value)>,
        /// Whether to enforce first-committer-wins.
        conflict_check: bool,
    },
    /// Second phase of commit: install the prewritten versions at
    /// `commit_ts` and release the attempt's locks.
    Commit {
        /// The committing attempt.
        txn: TxnId,
        /// Version timestamp of the installed writes.
        commit_ts: u64,
    },
    /// Abort the attempt: discard prewritten state and release its locks.
    Abort {
        /// The aborting attempt.
        txn: TxnId,
    },
    /// Sent by a *recovering shard* to the attempt's coordinator (its
    /// client): the shard replayed a prewrite from its write-ahead log but
    /// found no commit/abort decision — the attempt is in doubt. The
    /// client answers with [`Reply::Decision`]; losing either message is
    /// harmless, because the client's own commit/abort resends resolve the
    /// attempt eventually anyway.
    QueryDecision {
        /// The in-doubt attempt.
        txn: TxnId,
    },
}

/// The coordinator's verdict on an in-doubt attempt, carried by
/// [`Reply::Decision`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// The attempt committed at this timestamp; the shard applies the
    /// commit (idempotently) to its recovered prewrite.
    Committed(u64),
    /// The attempt never committed and the client has moved past it — the
    /// presumed-abort rule: no logged decision means abort. The shard
    /// discards the recovered prewrite and releases its locks.
    Aborted,
    /// The attempt is still running; the shard keeps the in-doubt state
    /// and lets the ordinary protocol (commit/abort with unlimited
    /// resends) decide it.
    InProgress,
}

/// A reply from a shard or the oracle.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// A timestamp drawn from the oracle.
    Ts(u64),
    /// The served read value, with the transaction that wrote the version
    /// (`None` for the initial version).
    ReadOk {
        /// The value read.
        value: Value,
        /// The attempt that installed the version, `None` for init.
        writer: Option<TxnId>,
    },
    /// A snapshot read arrived while a possibly-visible commit was in
    /// flight (exclusive lock with `start_ts <= snapshot`); the client
    /// retries after a delay.
    ReadLocked,
    /// A locking read hit a conflicting exclusive lock (no-wait two-phase
    /// locking): the client aborts the attempt and retries.
    ReadConflict,
    /// Prewrite succeeded: locks held, writes buffered.
    PrewriteOk,
    /// Prewrite rejected (lock conflict, first-committer-wins conflict, or
    /// the attempt was already aborted).
    PrewriteConflict,
    /// Commit applied (idempotent).
    CommitOk,
    /// Abort applied (idempotent).
    AbortOk,
    /// The coordinator's answer to [`Request::QueryDecision`]. Carries the
    /// attempt so the shard can apply it without per-request bookkeeping;
    /// duplicated or stale decisions are harmless because applying one is
    /// idempotent and a decision never changes once made.
    Decision {
        /// The queried attempt.
        txn: TxnId,
        /// The coordinator's verdict.
        decision: Decision,
    },
}

/// The payload of a [`Message`].
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// A client request.
    Request(Request),
    /// A server reply.
    Reply(Reply),
}

/// A message on the simulated network.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// The sender (where replies go).
    pub from: Addr,
    /// Client-chosen request identifier; echoed in the reply.
    pub req_id: u64,
    /// The payload.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_indexes_are_dense_and_disjoint() {
        let shards = 3;
        let mut seen = std::collections::BTreeSet::new();
        for a in [
            Addr::Shard(0),
            Addr::Shard(2),
            Addr::Oracle,
            Addr::Client(0),
            Addr::Client(5),
        ] {
            assert!(seen.insert(a.node_index(shards)), "{a:?} collides");
        }
        assert_eq!(Addr::Oracle.node_index(shards), 3);
        assert_eq!(Addr::Client(0).node_index(shards), 4);
    }
}
