//! Protocol modes and deployments: what the store *runs* and what it
//! *claims*.
//!
//! A [`ProtocolMode`] selects the concurrency-control behaviour of one
//! transaction; a [`Deployment`] assigns modes per transaction type (like
//! [`MixedScenario`](https://docs.rs) rules) and states the isolation level
//! each mode is claimed to provide. The `simulate` pipeline checks recorded
//! histories against the *claimed* spec, so a deployment whose claim
//! overshoots its behaviour — see [`Deployment::si_unchecked`] — is exactly
//! the kind of protocol bug the checker is meant to catch.

use txdpor_history::{IsolationLevel, LevelSpec};

/// The concurrency-control behaviour of one transaction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtocolMode {
    /// Strict two-phase locking, no-wait: reads take shared locks on the
    /// latest version, writes take exclusive locks at prewrite, all locks
    /// held until commit. Claims Serializability.
    Serializable,
    /// Multi-version snapshot reads at a start timestamp plus
    /// first-committer-wins write-conflict detection at prewrite
    /// (Percolator-style). Claims Snapshot Isolation.
    Snapshot,
    /// Multi-version snapshot reads with prewrite locking but *no*
    /// write-conflict detection: concurrent writers of the same variable
    /// may both commit. Claims Prefix Consistency (which implies Causal
    /// Consistency).
    Causal,
}

impl ProtocolMode {
    /// The isolation level this mode actually provides (and claims, absent
    /// a deployment-wide override).
    pub fn claimed(self) -> IsolationLevel {
        match self {
            ProtocolMode::Serializable => IsolationLevel::Serializability,
            ProtocolMode::Snapshot => IsolationLevel::SnapshotIsolation,
            ProtocolMode::Causal => IsolationLevel::PrefixConsistency,
        }
    }

    /// Whether reads are served from a start-timestamp snapshot (vs the
    /// latest version under a shared lock).
    pub fn snapshot_reads(self) -> bool {
        !matches!(self, ProtocolMode::Serializable)
    }

    /// Whether prewrite enforces first-committer-wins.
    pub fn conflict_check(self) -> bool {
        matches!(self, ProtocolMode::Snapshot)
    }

    /// Whether reads take shared locks.
    pub fn lock_reads(self) -> bool {
        matches!(self, ProtocolMode::Serializable)
    }

    /// Short name used in deployment labels.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolMode::Serializable => "ser",
            ProtocolMode::Snapshot => "si",
            ProtocolMode::Causal => "causal",
        }
    }
}

/// A deployment: the per-transaction-type mode assignment of a simulated
/// cluster, plus the isolation level it claims to provide.
#[derive(Clone, Debug, PartialEq)]
pub struct Deployment {
    /// Deployment name, used in labels and the `simulate` CLI.
    pub name: String,
    /// Mode of every transaction type without a rule.
    pub default_mode: ProtocolMode,
    /// `transaction name ↦ mode` rules.
    pub rules: Vec<(String, ProtocolMode)>,
    /// When set, the claimed level of *every* transaction regardless of its
    /// mode — the knob for intentionally over-claiming deployments.
    pub claimed_override: Option<IsolationLevel>,
    /// Whether shards log prewrites and lock intents to their write-ahead
    /// log. Honest deployments are durable; the [`Deployment::no_wal`]
    /// deployment sets this to `false` and loses undecided state on crash.
    /// Commit/abort decisions are always durable, so recovery never
    /// resurrects an aborted attempt even here.
    pub durable: bool,
}

impl Deployment {
    /// Everything serializable.
    pub fn ser() -> Self {
        Deployment {
            name: "ser".into(),
            default_mode: ProtocolMode::Serializable,
            rules: Vec::new(),
            claimed_override: None,
            durable: true,
        }
    }

    /// Everything snapshot isolation.
    pub fn si() -> Self {
        Deployment {
            name: "si".into(),
            default_mode: ProtocolMode::Snapshot,
            rules: Vec::new(),
            claimed_override: None,
            durable: true,
        }
    }

    /// Everything causal (snapshot reads, no write-conflict detection).
    pub fn causal() -> Self {
        Deployment {
            name: "causal".into(),
            default_mode: ProtocolMode::Causal,
            rules: Vec::new(),
            claimed_override: None,
            durable: true,
        }
    }

    /// A mixed deployment: causal by default, with the given transaction
    /// types escalated per rule (typically to [`ProtocolMode::Serializable`],
    /// mirroring the `crates/apps` mixed scenarios).
    pub fn mixed(rules: Vec<(String, ProtocolMode)>) -> Self {
        Deployment {
            name: "mixed".into(),
            default_mode: ProtocolMode::Causal,
            rules,
            claimed_override: None,
            durable: true,
        }
    }

    /// The intentionally weakened deployment: runs [`ProtocolMode::Causal`]
    /// (no write-conflict detection) while *claiming* Snapshot Isolation.
    /// Under write contention this commits lost updates, which the checker
    /// flags as a violation of the Conflict axiom — the end-to-end
    /// regression the simulation pipeline exists to catch.
    pub fn si_unchecked() -> Self {
        Deployment {
            name: "si-unchecked".into(),
            default_mode: ProtocolMode::Causal,
            rules: Vec::new(),
            claimed_override: Some(IsolationLevel::SnapshotIsolation),
            durable: true,
        }
    }

    /// The intentionally crash-unsafe deployment: runs (and claims)
    /// Snapshot Isolation, but its shards do **not** log prewrites or lock
    /// intents to the write-ahead log — only commit/abort decisions are
    /// durable. A crash forgets every in-flight writer, so a concurrent
    /// transaction can slip past the lost lock and first-committer-wins is
    /// violated after restart: a lost update the checker flags as a
    /// Conflict-axiom violation with a closed core. Without crash faults
    /// this deployment is indistinguishable from [`Deployment::si`].
    pub fn no_wal() -> Self {
        Deployment {
            name: "no-wal".into(),
            default_mode: ProtocolMode::Snapshot,
            rules: Vec::new(),
            claimed_override: None,
            durable: false,
        }
    }

    /// Whether this deployment is honest: its claim matches its behaviour
    /// under every fault plan, crashes included.
    pub fn honest(&self) -> bool {
        self.claimed_override.is_none() && self.durable
    }

    /// The mode of a transaction type.
    pub fn mode_of(&self, tx_name: &str) -> ProtocolMode {
        self.rules
            .iter()
            .find(|(n, _)| n == tx_name)
            .map(|&(_, m)| m)
            .unwrap_or(self.default_mode)
    }

    /// The isolation level claimed for a transaction running in `mode`.
    pub fn claimed_level(&self, mode: ProtocolMode) -> IsolationLevel {
        self.claimed_override.unwrap_or_else(|| mode.claimed())
    }

    /// The claimed spec's default level (the claim of the default mode).
    pub fn default_claimed(&self) -> IsolationLevel {
        self.claimed_level(self.default_mode)
    }

    /// The uniform claimed spec of a rule-free deployment, `None` when the
    /// claim genuinely varies per transaction type (the recorder then
    /// builds the mixed spec from the recorded positions).
    pub fn uniform_claim(&self) -> Option<LevelSpec> {
        let base = self.default_claimed();
        self.rules
            .iter()
            .all(|&(_, m)| self.claimed_level(m) == base)
            .then(|| LevelSpec::uniform(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_properties_line_up_with_claims() {
        assert_eq!(
            ProtocolMode::Serializable.claimed(),
            IsolationLevel::Serializability
        );
        assert!(!ProtocolMode::Serializable.snapshot_reads());
        assert!(ProtocolMode::Serializable.lock_reads());
        assert!(!ProtocolMode::Serializable.conflict_check());
        assert!(ProtocolMode::Snapshot.snapshot_reads());
        assert!(ProtocolMode::Snapshot.conflict_check());
        assert!(!ProtocolMode::Snapshot.lock_reads());
        assert!(ProtocolMode::Causal.snapshot_reads());
        assert!(!ProtocolMode::Causal.conflict_check());
        assert_eq!(
            ProtocolMode::Causal.claimed(),
            IsolationLevel::PrefixConsistency
        );
    }

    #[test]
    fn deployments_resolve_modes_and_claims() {
        let d = Deployment::mixed(vec![("payment".into(), ProtocolMode::Serializable)]);
        assert_eq!(d.mode_of("payment"), ProtocolMode::Serializable);
        assert_eq!(d.mode_of("browse"), ProtocolMode::Causal);
        assert_eq!(
            d.claimed_level(ProtocolMode::Serializable),
            IsolationLevel::Serializability
        );
        assert_eq!(d.uniform_claim(), None);

        let weak = Deployment::si_unchecked();
        assert_eq!(weak.mode_of("anything"), ProtocolMode::Causal);
        assert_eq!(
            weak.claimed_level(ProtocolMode::Causal),
            IsolationLevel::SnapshotIsolation
        );
        assert_eq!(
            weak.uniform_claim(),
            Some(LevelSpec::uniform(IsolationLevel::SnapshotIsolation))
        );
        assert_eq!(
            Deployment::ser().uniform_claim(),
            Some(LevelSpec::uniform(IsolationLevel::Serializability))
        );
    }

    #[test]
    fn no_wal_claims_si_without_durability() {
        let d = Deployment::no_wal();
        assert_eq!(d.name, "no-wal");
        assert_eq!(d.default_mode, ProtocolMode::Snapshot);
        assert!(!d.durable);
        assert_eq!(
            d.uniform_claim(),
            Some(LevelSpec::uniform(IsolationLevel::SnapshotIsolation))
        );
        // Honesty = claim matches behaviour under every fault plan: the
        // two broken deployments fail it for different reasons.
        for honest in [
            Deployment::ser(),
            Deployment::si(),
            Deployment::causal(),
            Deployment::mixed(vec![("payment".into(), ProtocolMode::Serializable)]),
        ] {
            assert!(honest.honest(), "{} should be honest", honest.name);
        }
        assert!(!Deployment::si_unchecked().honest());
        assert!(!Deployment::no_wal().honest());
    }
}
