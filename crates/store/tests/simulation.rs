//! End-to-end properties of the simulated store: determinism, checked
//! correctness of the honest protocols under faults, and the checker
//! catching the intentionally over-claiming deployment.

use txdpor_history::{engine_for_spec, IsolationLevel, LevelSpec};
use txdpor_program::dsl::*;
use txdpor_program::Program;
use txdpor_store::{
    run_simulation, ClientError, Deployment, FaultPlan, Partition, RetryPolicy, SimConfig,
};

/// `sessions` clients each bumping a shared counter `bumps` times:
/// maximal write contention, the classic lost-update workload.
fn counter_program(sessions: usize, bumps: usize) -> Program {
    let mut ss = Vec::new();
    for _ in 0..sessions {
        let txs = (0..bumps)
            .map(|_| {
                tx(
                    "bump",
                    vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
                )
            })
            .collect();
        ss.push(session(txs));
    }
    program(ss)
}

fn deployments() -> Vec<Deployment> {
    vec![
        Deployment::ser(),
        Deployment::si(),
        Deployment::causal(),
        Deployment::si_unchecked(),
        Deployment::no_wal(),
    ]
}

#[test]
fn same_seed_replays_are_bit_identical() {
    for deployment in deployments() {
        for preset in [
            "jitter",
            "lossy",
            "chaos",
            "partitions",
            "crashy",
            "crash-chaos",
        ] {
            for seed in [1u64, 42, 1234] {
                let cfg = SimConfig::new(
                    counter_program(3, 2),
                    deployment.clone(),
                    seed,
                    FaultPlan::preset(preset).unwrap(),
                );
                let a = run_simulation(&cfg);
                let b = run_simulation(&cfg);
                assert_eq!(
                    a.history.fingerprint_hash(),
                    b.history.fingerprint_hash(),
                    "{}/{preset}/{seed}: replay diverged",
                    deployment.name
                );
                assert_eq!(a.stats, b.stats, "{}/{preset}/{seed}", deployment.name);
                assert_eq!(a.errors, b.errors, "{}/{preset}/{seed}", deployment.name);
            }
        }
    }
}

#[test]
fn correct_protocols_pass_their_claim_with_a_replayable_witness() {
    for deployment in [Deployment::ser(), Deployment::si(), Deployment::causal()] {
        for preset in [
            "jitter",
            "lossy",
            "chaos",
            "partitions",
            "crashy",
            "crash-chaos",
        ] {
            for seed in [1u64, 7, 99] {
                let cfg = SimConfig::new(
                    counter_program(3, 2),
                    deployment.clone(),
                    seed,
                    FaultPlan::preset(preset).unwrap(),
                );
                let out = run_simulation(&cfg);
                let label = format!("{}/{preset}/{seed}", deployment.name);
                assert!(out.stats.committed > 0, "{label}: nothing committed");
                assert!(
                    out.invariant_breaches.is_empty(),
                    "{label}: shard invariants broken: {:?}",
                    out.invariant_breaches
                );
                let verdict = engine_for_spec(&out.claimed).check_witnessed(&out.history);
                let witness = verdict.witness().unwrap_or_else(|| {
                    panic!(
                        "{label}: correct protocol violated its claim: {}",
                        verdict.violation().unwrap()
                    )
                });
                assert!(
                    witness.replays(&out.history, &out.claimed),
                    "{label}: witness does not replay"
                );
            }
        }
    }
}

#[test]
fn weakened_si_claim_is_caught_with_a_valid_violation_core() {
    // The si-unchecked deployment runs causal-mode concurrency control (no
    // first-committer-wins) while claiming Snapshot Isolation. Under write
    // contention plus network jitter two bumps read the same snapshot and
    // both commit — a lost update. At least one seed in this small sweep
    // must expose it, and the violation core must be a closed cycle over a
    // history that *is* consistent at the mode's true level (PC).
    let mut caught = 0;
    for seed in 0..12u64 {
        let cfg = SimConfig::new(
            counter_program(4, 3),
            Deployment::si_unchecked(),
            seed,
            FaultPlan::preset("jitter").unwrap(),
        );
        let out = run_simulation(&cfg);
        let verdict = engine_for_spec(&out.claimed).check_witnessed(&out.history);
        let Some(violation) = verdict.violation() else {
            continue;
        };
        caught += 1;
        // The core is a closed cycle: consecutive edges chain, and the
        // last edge returns to the first transaction.
        let cycle = &violation.cycle;
        assert!(cycle.len() >= 2, "seed {seed}: degenerate cycle");
        for (e, next) in cycle.iter().zip(cycle.iter().cycle().skip(1)) {
            assert_eq!(
                e.to, next.from,
                "seed {seed}: violation core is not a closed cycle: {violation}"
            );
        }
        // The history is genuinely PC (what causal mode actually provides):
        // only the *claim* was wrong.
        let truth = LevelSpec::uniform(IsolationLevel::PrefixConsistency);
        let pc = engine_for_spec(&truth).check_witnessed(&out.history);
        assert!(
            pc.is_consistent(),
            "seed {seed}: causal-mode run should still be PC"
        );
        assert!(pc.witness().unwrap().replays(&out.history, &truth));
    }
    assert!(
        caught >= 1,
        "no seed exposed the lost update — weakened deployment undetected"
    );
}

#[test]
fn crash_presets_actually_exercise_recovery_on_honest_deployments() {
    // Beyond "still consistent", the crash machinery must demonstrably
    // fire: crashes injected, traffic dropped at downed shards, WAL
    // records replayed — and across the sweep, at least one in-doubt
    // attempt resolved to commit via a coordinator query. A regression
    // that silently stops scheduling crashes would otherwise keep every
    // consistency assertion green.
    let mut total_replayed = 0;
    let mut total_indoubt_committed = 0;
    for deployment in [Deployment::ser(), Deployment::si(), Deployment::causal()] {
        for (preset, want_crashes) in [("crashy", 2u64), ("crash-chaos", 3u64)] {
            for seed in 0..4u64 {
                let cfg = SimConfig::new(
                    counter_program(4, 3),
                    deployment.clone(),
                    seed,
                    FaultPlan::preset(preset).unwrap(),
                );
                let out = run_simulation(&cfg);
                let label = format!("{}/{preset}/{seed}", deployment.name);
                assert_eq!(out.stats.crashes, want_crashes, "{label}");
                assert!(
                    out.stats.crash_drops > 0,
                    "{label}: no message ever hit a downed shard"
                );
                assert_eq!(
                    out.stats.committed, 12,
                    "{label}: transactions lost to crashes"
                );
                assert!(
                    out.invariant_breaches.is_empty(),
                    "{label}: {:?}",
                    out.invariant_breaches
                );
                total_replayed += out.stats.wal_replayed;
                total_indoubt_committed += out.stats.indoubt_committed;
            }
        }
    }
    assert!(total_replayed > 0, "no recovery ever replayed a WAL record");
    assert!(
        total_indoubt_committed > 0,
        "no in-doubt attempt was ever resolved to commit by a coordinator query"
    );
}

#[test]
fn crash_unsafe_no_wal_deployment_is_caught_with_a_closed_core() {
    // The no-wal deployment keeps commit/abort decisions durable but loses
    // prewrites and lock intents on crash. A crash mid-2PC therefore
    // forgets an in-flight writer; a concurrent bump slips past the lost
    // lock, both commit, and the lost update violates the claimed Snapshot
    // Isolation. Each crash preset must expose it on at least one seed,
    // with a closed violation core — and the *same* runs under the durable
    // `si` deployment must stay consistent, pinning the blame on lost WAL
    // state rather than on the workload.
    for preset in ["crashy", "crash-chaos"] {
        let mut caught = 0;
        for seed in 0..8u64 {
            let cfg = SimConfig::new(
                counter_program(4, 3),
                Deployment::no_wal(),
                seed,
                FaultPlan::preset(preset).unwrap(),
            );
            let out = run_simulation(&cfg);
            assert!(
                out.invariant_breaches.is_empty(),
                "{preset}/{seed}: losing the WAL must not corrupt shard-local invariants: {:?}",
                out.invariant_breaches
            );
            let verdict = engine_for_spec(&out.claimed).check_witnessed(&out.history);
            let honest = run_simulation(&SimConfig::new(
                counter_program(4, 3),
                Deployment::si(),
                seed,
                FaultPlan::preset(preset).unwrap(),
            ));
            assert!(
                engine_for_spec(&honest.claimed)
                    .check_witnessed(&honest.history)
                    .is_consistent(),
                "{preset}/{seed}: durable si run inconsistent — bug is not no-wal-specific"
            );
            let Some(violation) = verdict.violation() else {
                continue;
            };
            caught += 1;
            let cycle = &violation.cycle;
            assert!(cycle.len() >= 2, "{preset}/{seed}: degenerate cycle");
            for (e, next) in cycle.iter().zip(cycle.iter().cycle().skip(1)) {
                assert_eq!(
                    e.to, next.from,
                    "{preset}/{seed}: violation core is not a closed cycle: {violation}"
                );
            }
        }
        assert!(
            caught >= 1,
            "{preset}: no seed exposed the lost update — crash-unsafe deployment undetected"
        );
    }
}

#[test]
fn permanently_partitioned_client_gives_up_with_a_typed_error() {
    // One shard (node 0), the oracle (node 1), one client (node 2). The
    // client is cut off from both servers forever: every attempt exhausts
    // its RPC budget and the driver must give up with a typed error
    // instead of panicking or spinning.
    let prog = program(vec![session(vec![tx(
        "t",
        vec![read("a", g("x")), write(g("x"), cint(1))],
    )])]);
    let mut faults = FaultPlan::none();
    faults.partitions = vec![
        Partition {
            a: 1,
            b: 2,
            from_us: 0,
            until_us: u64::MAX,
        },
        Partition {
            a: 0,
            b: 2,
            from_us: 0,
            until_us: u64::MAX,
        },
    ];
    let mut cfg = SimConfig::new(prog, Deployment::si(), 5, faults);
    cfg.num_shards = 1;
    cfg.retry = RetryPolicy {
        max_attempts: 3,
        max_rpc_resends: 2,
        ..RetryPolicy::default()
    };
    let out = run_simulation(&cfg);
    assert_eq!(out.stats.committed, 0);
    assert_eq!(out.stats.given_up, 1);
    assert_eq!(
        out.errors,
        vec![ClientError::RetriesExhausted {
            session: 0,
            tx_index: 0,
            name: "t".into(),
            attempts: 3,
        }]
    );
    // The recorded history is empty but well-formed, and trivially meets
    // the claim.
    assert!(out.claimed.satisfies(&out.history));
}
