//! Crash-at-every-step sweep: for a small fixed workload, crash each shard
//! at every distinct simulation decision point (the event times of an
//! undisturbed traced run) and assert the recovery invariants at each
//! crash site — no resurrected locks, no duplicate version installs
//! ([`Shard::check_invariants`] inside the simulation), a well-formed
//! recorded history that still meets the deployment's claim, and
//! bit-identical replays. The sweep is deterministic: the probe run and
//! every crashed run share one seed, so a failure names an exact
//! `(shard, time)` crash site to replay.

use txdpor_history::engine_for_spec;
use txdpor_program::dsl::*;
use txdpor_program::Program;
use txdpor_store::{run_simulation, run_simulation_traced, Deployment, FaultPlan, SimConfig};

fn counter_program(sessions: usize, bumps: usize) -> Program {
    let mut ss = Vec::new();
    for _ in 0..sessions {
        let txs = (0..bumps)
            .map(|_| {
                tx(
                    "bump",
                    vec![read("a", g("x")), write(g("x"), add(local("a"), cint(1)))],
                )
            })
            .collect();
        ss.push(session(txs));
    }
    program(ss)
}

fn sweep(deployment: Deployment, mode_allows_violation: bool) {
    let seed = 3u64;
    let base = SimConfig::new(
        counter_program(2, 2),
        deployment.clone(),
        seed,
        FaultPlan::none(),
    );
    let (probe, times) = run_simulation_traced(&base);
    assert!(probe.invariant_breaches.is_empty());
    assert!(
        times.len() >= 40,
        "probe run too small to be an interesting sweep: {} decision points",
        times.len()
    );

    let mut crashes_seen = 0u64;
    let mut replays_seen = 0u64;
    for &t in &times {
        for shard in 0..base.num_shards {
            // Crash `shard` exactly at decision point `t`, restart 3 ms
            // later — long past the undisturbed run's horizon, so the
            // crash always lands mid-protocol, never after the fact.
            let mut cfg = base.clone();
            cfg.faults = format!("crash={shard}@{t}..{}", t + 3_000).parse().unwrap();
            let out = run_simulation(&cfg);
            let label = format!("{}/crash shard {shard} at {t}µs", deployment.name);
            assert!(
                out.invariant_breaches.is_empty(),
                "{label}: recovery invariants broken: {:?}",
                out.invariant_breaches
            );
            // Every transaction still commits exactly once: the recorded
            // history is complete, not padded by duplicated commits.
            assert_eq!(out.stats.committed, 4, "{label}");
            assert_eq!(out.stats.given_up, 0, "{label}");
            assert_eq!(out.stats.crashes, 1, "{label}");
            crashes_seen += out.stats.crashes;
            replays_seen += out.stats.wal_replayed;
            // The recorded history (whose recorder panics on reads from
            // never-committed attempts) still meets the claim — except for
            // deployments whose claim crashes are *supposed* to break.
            let verdict = engine_for_spec(&out.claimed).check_witnessed(&out.history);
            if !mode_allows_violation {
                assert!(
                    verdict.is_consistent(),
                    "{label}: {}",
                    verdict.violation().unwrap()
                );
            }
            // Crashed runs are as deterministic as healthy ones.
            let again = run_simulation(&cfg);
            assert_eq!(
                out.history.fingerprint_hash(),
                again.history.fingerprint_hash(),
                "{label}: replay diverged"
            );
            assert_eq!(out.stats, again.stats, "{label}");
        }
    }
    assert_eq!(crashes_seen, times.len() as u64 * base.num_shards as u64);
    assert!(
        replays_seen > 0,
        "{}: no crash point ever had WAL state to replay",
        deployment.name
    );
}

#[test]
fn every_crash_point_recovers_cleanly_under_si() {
    sweep(Deployment::si(), false);
}

#[test]
fn every_crash_point_recovers_cleanly_under_serializable() {
    sweep(Deployment::ser(), false);
}

#[test]
fn no_wal_never_corrupts_shard_invariants_even_when_it_loses_updates() {
    // The broken deployment may violate its *claim* (that is its purpose),
    // but shard-local invariants and determinism must survive every crash
    // point all the same.
    sweep(Deployment::no_wal(), true);
}
