//! `FaultPlan` `Display` ↔ `parse` round-trip properties: every preset and
//! a seeded sweep of generated specs (delays, probabilities, partitions,
//! crash windows) re-parse from their rendering to an equal plan. Any
//! asymmetry between the renderer and the parser — a clause printed but
//! not accepted, a normalisation applied on one side only — fails here.

use proptest::prelude::*;

use txdpor_store::{Crash, FaultPlan, Partition};

#[test]
fn every_preset_round_trips_through_display() {
    for name in FaultPlan::PRESETS {
        let plan = FaultPlan::preset(name).unwrap();
        let rendered = plan.to_string();
        let reparsed: FaultPlan = rendered
            .parse()
            .unwrap_or_else(|e| panic!("{name}: rendering {rendered:?} does not parse: {e}"));
        assert_eq!(plan, reparsed, "{name}: {rendered}");
    }
}

/// Probabilities as hundredths so every generated value prints and parses
/// exactly (Rust's f64 `Display` is round-trip-faithful, but generating
/// from a small grid keeps failure output readable).
fn prob() -> impl Strategy<Value = f64> {
    (0..=100u32).prop_map(|p| p as f64 / 100.0)
}

fn partition() -> impl Strategy<Value = Partition> {
    (0..8u32, 0..8u32, 0..50_000u64, 1..10_000u64).prop_map(|(a, b, from_us, len)| Partition {
        a,
        b,
        from_us,
        until_us: from_us + len,
    })
}

fn crash() -> impl Strategy<Value = Crash> {
    (0..4u32, 0..50_000u64, 1..10_000u64).prop_map(|(node, from_us, len)| Crash {
        node,
        from_us,
        until_us: from_us + len,
    })
}

fn plan() -> impl Strategy<Value = FaultPlan> {
    (
        (0..2_000u64, 0..2_000u64),
        (prob(), prob(), prob()),
        0..10_000u64,
        proptest::collection::vec(partition(), 0..=3),
        proptest::collection::vec(crash(), 0..=4),
    )
        .prop_map(
            |(delay, (drop, dup, reorder), spike, partitions, raw_crashes)| {
                // The parser rejects overlapping windows of the same shard, so
                // the generator keeps the first window of each colliding pair —
                // mirroring the parser's accepted set rather than avoiding it.
                let mut crashes: Vec<Crash> = Vec::new();
                for c in raw_crashes {
                    let overlaps = crashes.iter().any(|p: &Crash| {
                        p.node == c.node && p.from_us < c.until_us && c.from_us < p.until_us
                    });
                    if !overlaps {
                        crashes.push(c);
                    }
                }
                FaultPlan {
                    delay_us: (delay.0.min(delay.1), delay.0.max(delay.1)),
                    drop,
                    dup,
                    reorder,
                    reorder_extra_us: spike,
                    partitions,
                    crashes,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn generated_plans_round_trip_through_display(plan in plan()) {
        let rendered = plan.to_string();
        let reparsed: FaultPlan = match rendered.parse() {
            Ok(p) => p,
            Err(e) => panic!("rendering {rendered:?} does not parse: {e}"),
        };
        prop_assert_eq!(&plan, &reparsed, "{}", rendered);
        // Display is a normal form: rendering again is a fixpoint.
        prop_assert_eq!(rendered.clone(), reparsed.to_string());
    }
}
