//! # txdpor — DPOR model checking for transactional programs
//!
//! A Rust implementation of the PLDI 2023 paper *"Dynamic Partial Order
//! Reduction for Checking Correctness against Transaction Isolation
//! Levels"* (Bouajjani, Enea, Román-Calvo): stateless model checking of
//! database-backed applications under weak isolation levels with sound,
//! complete and (strongly) optimal dynamic partial order reduction.
//!
//! This facade crate re-exports the five library crates of the workspace:
//!
//! * [`history`] — histories, isolation levels, consistency checking;
//! * [`program`] — the transactional program DSL and operational semantics;
//! * [`explore`] — the `explore-ce` / `explore-ce*` DPOR algorithms and the
//!   `DFS` baseline;
//! * [`apps`] — the benchmark applications (Shopping Cart, Twitter,
//!   Courseware, Wikipedia, TPC-C) and workload generators;
//! * [`store`] — a deterministic simulated distributed store with fault
//!   injection, whose recorded executions are checked end-to-end against
//!   their claimed isolation levels;
//! * [`analysis`] — static conflict analysis and communication-graph
//!   decomposition: pure pre-processing that splits checking and prunes
//!   exploration without changing any verdict.
//!
//! # Quick start
//!
//! ```
//! use txdpor::prelude::*;
//!
//! // A two-session bank-transfer race.
//! let withdraw = || tx("withdraw", vec![
//!     read("b", g("balance")),
//!     iff(ge(local("b"), cint(50)), vec![write(g("balance"), sub(local("b"), cint(50)))]),
//! ]);
//! let mut p = program(vec![session(vec![withdraw()]), session(vec![withdraw()])]);
//! p.init_values.push(("balance".to_owned(), Value::Int(60)));
//!
//! // Under Causal Consistency both withdrawals can succeed (double spend)…
//! let cc = explore(&p, ExploreConfig::explore_ce(IsolationLevel::CausalConsistency))?;
//! // …under Serializability at most one can.
//! let ser = explore(&p, ExploreConfig::explore_ce_star(
//!     IsolationLevel::CausalConsistency, IsolationLevel::Serializability))?;
//! assert!(cc.outputs > ser.outputs);
//! # Ok::<(), txdpor::explore::ExploreError>(())
//! ```

#![warn(missing_docs)]

pub use txdpor_analysis as analysis;
pub use txdpor_apps as apps;
pub use txdpor_explore as explore;
pub use txdpor_history as history;
pub use txdpor_program as program;
pub use txdpor_store as store;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use txdpor_apps::workload::{client_program, App, WorkloadConfig};
    pub use txdpor_explore::{
        dfs_explore, explore, explore_with_assertion, AssertionCtx, DfsConfig, ExplorationReport,
        ExploreConfig,
    };
    pub use txdpor_history::{
        engine_for, ConsistencyChecker, History, IsolationLevel, Value, Var, VarTable,
    };
    pub use txdpor_program::dsl::*;
    pub use txdpor_program::{execute_serial, Program, Session, TransactionDef};
}
